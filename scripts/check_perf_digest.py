#!/usr/bin/env python3
"""Compare a fresh perf_baseline run against the committed artifact.

Usage: check_perf_digest.py <fresh.json> <committed.json>

Fails (exit 1) if any circuit's routing decisions (per-engine unit
counts) or final costs (conflicts/stitches) differ from the committed
BENCH_pipeline.json, or if the training digest (final per-head losses,
labeled/deduped unit counts) drifts. Timing fields are ignored — they
vary by host; the digest fields are deterministic given the model seed
and the GEMM microkernel. When the two runs used different kernels
(`fp_kernel`), the comparison is skipped: the forward pass's last bits
differ legitimately, so threshold decisions near the boundary may too.
"""

import json
import sys


def check_quantized(fresh) -> bool:
    """Internal consistency of the fresh run's quantized tier.

    The quantized forwards promise closeness, not bit-identity, so the
    guard is on *decisions*: every f16/int8 suite run must report the
    same per-circuit routing (unit counts, final conflicts/stitches,
    per-engine splits) as the f32 adaptive run of the same binary, with
    the in-binary equality assertion intact, and the batch planner must
    not have increased padding waste. Throughput numbers are ignored —
    they vary by host. Returns True when something diverged.
    """
    quant = fresh.get("quantized")
    if quant is None:
        print("fresh run lacks a quantized section")
        return True
    bad = False
    adaptive_rows = {r["name"]: r for r in fresh["adaptive"]["per_circuit"]}
    for run in quant.get("precisions", []):
        label = run.get("label")
        if not run.get("decisions_equal_f32"):
            print(f"quantized[{label}]: decisions_equal_f32 is not true")
            bad = True
        if not run.get("kernel"):
            print(f"quantized[{label}]: no kernel label recorded")
            bad = True
        before = run.get("padding_waste_before_bytes", 0)
        after = run.get("padding_waste_after_bytes", 0)
        if after > before:
            print(
                f"quantized[{label}]: planner increased padding waste "
                f"({before} -> {after} bytes)"
            )
            bad = True
        for row in run.get("per_circuit", []):
            ref = adaptive_rows.get(row["name"])
            if ref is None:
                print(
                    f"quantized[{label}]: circuit {row['name']} missing "
                    "from the adaptive section"
                )
                bad = True
                continue
            for key in ("units", "conflicts", "stitches", "engines"):
                if row.get(key) != ref.get(key):
                    print(
                        f"quantized[{label}] {row['name']}: {key} = "
                        f"{row.get(key)} differs from the f32 adaptive "
                        f"run's {ref.get(key)}"
                    )
                    bad = True
    if not bad:
        n = len(quant.get("precisions", []))
        print(f"quantized tier consistent with the f32 run ({n} precisions)")
    return bad


def check_serving(fresh) -> bool:
    """Internal consistency of the fresh run's serving section.

    Served digests are asserted equal to the serial adaptive run inside
    the harness binary (cost, engine usage, warm-request inference
    counts); here the guard re-checks the recorded flags and that the
    warm pass actually exercised the cross-request caches. Throughput is
    ignored — it varies by host. Returns True when something diverged.
    """
    serving = fresh.get("serving")
    if serving is None:
        print("fresh run lacks a serving section")
        return True
    bad = False
    for row in serving.get("per_circuit", []):
        if not row.get("cost_equal"):
            print(f"serving[{row.get('name')}]: cost_equal is not true")
            bad = True
        if row.get("units", 0) > 0 and row.get("warm_routing_memo_hits", 0) == 0:
            print(
                f"serving[{row.get('name')}]: warm request missed the "
                "cross-request routing memo"
            )
            bad = True
    memo = serving.get("routing_memo", {})
    if memo.get("hits", 0) == 0:
        print("serving: the shared routing memo recorded no hits at all")
        bad = True
    if not bad:
        n = len(serving.get("per_circuit", []))
        print(f"serving tier consistent with the serial run ({n} circuits)")
    return bad


def check_serving_resume(fresh) -> bool:
    """Internal consistency of the fresh run's serving_resume section.

    The harness runs a journaled job cold, tears the journal to the
    torn-append state a mid-write SIGKILL leaves, and re-submits the
    same job id to a fresh serve loop. The guard requires that the
    resumed run actually reused surviving records and stayed
    bit-identical to the cold run (asserted in-binary, recorded as
    digest_equal_cold). Timings are ignored — they vary by host.
    Returns True when something diverged.
    """
    resume = fresh.get("serving_resume")
    if resume is None:
        print("fresh run lacks a serving_resume section")
        return True
    bad = False
    if not resume.get("digest_equal_cold"):
        print("serving_resume: digest_equal_cold is not true")
        bad = True
    if resume.get("resumed_units", 0) <= 0:
        print("serving_resume: the restarted job reused no journal records")
        bad = True
    kept = resume.get("journal_records_kept", 0)
    if kept <= 0:
        print("serving_resume: the torn journal kept no whole records")
        bad = True
    if resume.get("resumed_units", 0) > kept:
        print(
            f"serving_resume: resumed {resume.get('resumed_units')} units "
            f"but only {kept} records survived the tear"
        )
        bad = True
    if not bad:
        print(
            f"serving_resume consistent: {resume.get('resumed_units')} of "
            f"{kept} surviving records reused on {resume.get('circuit')}"
        )
    return bad


def check_library(fresh) -> bool:
    """Internal consistency of the fresh run's library (persistent
    store) section.

    The harness asserts in-binary that a warm store-backed engine — a
    fresh process sharing only the store directory — reproduced the cold
    run's digests bit-for-bit; the guard re-checks the recorded flags
    and the flywheel's effectiveness: the warm pass must re-solve at
    least 80% fewer tail units than the cold pass, and the store load
    must have contributed actual records. Timings are ignored — they
    vary by host. Returns True when something diverged.
    """
    lib = fresh.get("library")
    if lib is None:
        print("fresh run lacks a library section")
        return True
    bad = False
    if not lib.get("digests_equal"):
        print("library: digests_equal is not true")
        bad = True
    cold = lib.get("cold_tail_solves", 0)
    warm = lib.get("warm_tail_solves", 0)
    if cold <= 0:
        print("library: the cold run recorded no fresh tail solves")
        bad = True
    elif warm * 5 > cold:
        print(
            f"library: warm run re-solved {warm} of {cold} tail units "
            "(needs >=80% served from the store)"
        )
        bad = True
    if lib.get("loaded_solves", 0) <= 0:
        print("library: the warm engine loaded no solves from the store")
        bad = True
    if not lib.get("lib_loaded"):
        print("library: the warm engine rebuilt the graph library")
        bad = True
    if not bad:
        print(
            f"library store consistent: {cold} -> {warm} fresh tail solves "
            f"({lib.get('loaded_solves')} loaded in {lib.get('load_ms')} ms)"
        )
    return bad


def check_chip_scale(fresh, committed) -> bool:
    """Internal consistency of the fresh run's chip_scale section, plus
    a cross-run comparison of its deterministic fields.

    The harness asserts in-binary that the tiled parity probe's digest
    equals the serial one and that the boundary cost audit came back
    clean; the guard re-checks the recorded flags. When the committed
    artifact ran the same target size and seed, the deterministic
    geometry/graph/cost fields must match exactly — the generator, the
    tiler, and the solve are all seed-keyed. Timings, throughput, and
    peak RSS are ignored — they vary by host. Returns True when
    something diverged.
    """
    chip = fresh.get("chip_scale")
    if chip is None:
        print("fresh run lacks a chip_scale section")
        return True
    bad = False
    if not chip.get("boundary_audit_clean"):
        print("chip_scale: boundary_audit_clean is not true")
        bad = True
    probe = chip.get("parity_probe") or {}
    if not probe.get("digest_equal_serial"):
        print("chip_scale: parity_probe.digest_equal_serial is not true")
        bad = True
    if chip.get("rects", 0) < chip.get("target_rects", 0):
        print(
            f"chip_scale: generated {chip.get('rects')} rects, "
            f"below the {chip.get('target_rects')} target"
        )
        bad = True
    if chip.get("tiles", 0) <= 1:
        print("chip_scale: layout degenerated to a single tile")
        bad = True
    ref = (committed or {}).get("chip_scale")
    if ref is not None and ref.get("target_rects") == chip.get("target_rects"):
        for key in (
            "rects",
            "features",
            "tiles",
            "edges",
            "boundary_edges",
            "boundary_resolves",
            "units",
            "conflicts",
            "stitches",
            "objective",
        ):
            if chip.get(key) != ref.get(key):
                print(
                    f"chip_scale.{key} = {chip.get(key)} differs from "
                    f"committed {ref.get(key)}"
                )
                bad = True
    elif ref is not None:
        print(
            f"chip_scale target mismatch ({chip.get('target_rects')} vs "
            f"{ref.get('target_rects')}): cross-run comparison skipped"
        )
    if not bad:
        print(
            f"chip_scale consistent: {chip.get('rects')} rects over "
            f"{chip.get('tiles')} tiles, audit clean"
        )
    return bad


def main() -> int:
    fresh_path, committed_path = sys.argv[1], sys.argv[2]
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(committed_path) as f:
        committed = json.load(f)

    # Quantized tier first: decision parity and planner waste are
    # checked within the fresh run itself (host- and knob-independent),
    # so this gate applies even when cross-run comparison is skipped.
    quant_bad = committed.get("quantized") is not None and check_quantized(fresh)
    if quant_bad:
        print("quantized tier DIVERGED from the fresh run's own f32 routing")
    serving_bad = committed.get("serving") is not None and check_serving(fresh)
    if serving_bad:
        print("serving tier DIVERGED from the fresh run's own serial digests")
    resume_bad = committed.get("serving_resume") is not None and check_serving_resume(
        fresh
    )
    if resume_bad:
        print("serving_resume tier DIVERGED from the fresh run's own cold digest")
    library_bad = committed.get("library") is not None and check_library(fresh)
    if library_bad:
        print("library tier DIVERGED from the fresh run's own cold digests")
    # Chip-scale: the audit/parity flags are host-independent; the
    # deterministic cross-run fields are only comparable when both runs
    # generated from the same seed.
    chip_ref = committed if fresh.get("seed") == committed.get("seed") else None
    chip_bad = committed.get("chip_scale") is not None and check_chip_scale(
        fresh, chip_ref
    )
    if chip_bad:
        print("chip_scale tier DIVERGED (audit, parity probe, or digest)")
    quant_bad = quant_bad or serving_bad or resume_bad or library_bad or chip_bad

    if fresh.get("fp_kernel") != committed.get("fp_kernel"):
        print(
            f"fp_kernel mismatch ({fresh.get('fp_kernel')} vs "
            f"{committed.get('fp_kernel')}): skipping digest comparison"
        )
        return 1 if quant_bad else 0
    if fresh.get("seed") != committed.get("seed"):
        print(
            f"seed mismatch ({fresh.get('seed')} vs {committed.get('seed')}): "
            "skipping digest comparison"
        )
        return 1 if quant_bad else 0
    # Training config determines the model weights and hence routing;
    # quick runs (MPLD_EPOCHS / MPLD_TRAIN_CAP overrides) are not
    # comparable to the committed full run.
    for knob in ("train_cap", "epochs"):
        if fresh.get(knob) != committed.get(knob):
            print(
                f"{knob} mismatch ({fresh.get(knob)} vs "
                f"{committed.get(knob)}): skipping digest comparison"
            )
            return 1 if quant_bad else 0

    committed_rows = {
        r["name"]: r for r in committed["adaptive"]["per_circuit"]
    }
    bad = False
    compared = 0
    for row in fresh["adaptive"]["per_circuit"]:
        ref = committed_rows.get(row["name"])
        if ref is None:
            continue
        compared += 1
        for key in ("units", "conflicts", "stitches", "engines"):
            if row.get(key) != ref.get(key):
                print(
                    f"{row['name']}: {key} = {row.get(key)} differs from "
                    f"committed {ref.get(key)}"
                )
                bad = True
    if compared == 0:
        print("no overlapping circuits to compare")
        return 1

    # Training digest: the final per-head losses and the labeled/deduped
    # unit counts are deterministic given seed + kernel + training
    # config, so any drift means the training pipeline changed behavior
    # (dedup miscopying labels, batching perturbing the trajectory, ...).
    ft, ct = fresh.get("training"), committed.get("training")
    if ft is not None and ct is not None:
        if ft.get("train_seed") != ct.get("train_seed"):
            print(
                f"train_seed mismatch ({ft.get('train_seed')} vs "
                f"{ct.get('train_seed')}): skipping training digest"
            )
        else:
            for key in ("labeled_units", "deduped_units"):
                if ft.get(key) != ct.get(key):
                    print(
                        f"training.{key} = {ft.get(key)} differs from "
                        f"committed {ct.get(key)}"
                    )
                    bad = True
            for head, loss in (ft.get("final_losses") or {}).items():
                ref_loss = (ct.get("final_losses") or {}).get(head)
                if loss != ref_loss:
                    print(
                        f"training.final_losses.{head} = {loss} differs "
                        f"from committed {ref_loss}"
                    )
                    bad = True
    elif ct is not None:
        print("fresh run lacks a training section")
        bad = True

    if quant_bad:
        bad = True

    if bad:
        print("routing/cost/training digest DIVERGED from the committed artifact")
        return 1
    print(
        f"routing/cost/training digest matches the committed artifact "
        f"({compared} circuits)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
