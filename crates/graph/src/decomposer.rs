use crate::{Budget, Coloring, CostBreakdown, LayoutGraph, MpldError, NodeId};

/// Parameters shared by every decomposition engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecomposeParams {
    /// Number of masks `k` (3 for triple patterning).
    pub k: u8,
    /// Relative stitch weight `alpha` in the objective (usually 0.1).
    pub alpha: f64,
}

impl Default for DecomposeParams {
    fn default() -> Self {
        DecomposeParams {
            k: crate::DEFAULT_MASKS,
            alpha: crate::DEFAULT_ALPHA,
        }
    }
}

impl DecomposeParams {
    /// Triple-patterning parameters with the standard stitch weight.
    pub fn tpl() -> Self {
        Self::default()
    }

    /// Quadruple-patterning parameters with the standard stitch weight.
    pub fn qpl() -> Self {
        DecomposeParams {
            k: 4,
            alpha: crate::DEFAULT_ALPHA,
        }
    }
}

/// How much an engine vouches for the decomposition it returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Certainty {
    /// The engine proved this coloring optimal (exhaustive search ran to
    /// completion).
    Certified,
    /// The engine is heuristic: the coloring is valid but optimality is
    /// unknown by construction.
    Heuristic,
    /// The search was cut short by a [`Budget`]; the coloring is the
    /// best-so-far incumbent, valid but possibly suboptimal.
    BudgetExhausted,
    /// The routed engine panicked (or kept failing the independent audit)
    /// and the unit was quarantined with a greedy-fallback coloring. The
    /// coloring is valid but carries no quality guarantee.
    Degraded,
}

/// The result of decomposing one layout graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Per-node mask assignment.
    pub coloring: Coloring,
    /// Cost of `coloring` under the graph's objective.
    pub cost: CostBreakdown,
    /// How much the producing engine vouches for this result.
    pub certainty: Certainty,
}

impl Decomposition {
    /// Builds a decomposition, evaluating the cost of `coloring` on `graph`.
    ///
    /// The certainty defaults to [`Certainty::Heuristic`]; engines that
    /// proved optimality or ran out of budget re-tag with
    /// [`Decomposition::with_certainty`].
    ///
    /// # Errors
    ///
    /// Returns [`MpldError::ColoringMismatch`] if
    /// `coloring.len() != graph.num_nodes()`.
    pub fn try_from_coloring(
        graph: &LayoutGraph,
        coloring: Coloring,
        alpha: f64,
    ) -> Result<Self, MpldError> {
        if coloring.len() != graph.num_nodes() {
            return Err(MpldError::ColoringMismatch {
                expected: graph.num_nodes(),
                got: coloring.len(),
            });
        }
        let cost = graph.evaluate(&coloring, alpha);
        Ok(Decomposition {
            coloring,
            cost,
            certainty: Certainty::Heuristic,
        })
    }

    /// Builds a decomposition, evaluating the cost of `coloring` on `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `coloring.len() != graph.num_nodes()`. Use
    /// [`Decomposition::try_from_coloring`] for untrusted colorings.
    pub fn from_coloring(graph: &LayoutGraph, coloring: Coloring, alpha: f64) -> Self {
        match Self::try_from_coloring(graph, coloring, alpha) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// Re-tags the decomposition with `certainty`.
    pub fn with_certainty(mut self, certainty: Certainty) -> Self {
        self.certainty = certainty;
        self
    }
}

/// A layout decomposition engine.
///
/// Implementations in this workspace: the exact ILP engines
/// (`mpld-ilp`), the SDP relaxation (`mpld-sdp`), the exact-cover engine
/// (`mpld-ec`), and the GNN decomposer (`mpld-gnn`). All receive an
/// already-simplified component graph.
pub trait Decomposer {
    /// Short stable identifier used in reports ("ILP", "EC", ...).
    fn name(&self) -> &'static str;

    /// Decomposes `graph` with `params.k` masks under `budget`.
    ///
    /// On success the returned coloring always has `graph.num_nodes()`
    /// entries with values in `0..params.k`, and the reported cost equals
    /// `graph.evaluate(&coloring, params.alpha)`. Budget exhaustion is not
    /// an error: engines return the best-so-far incumbent tagged
    /// [`Certainty::BudgetExhausted`]. `Err` is reserved for requests the
    /// engine cannot serve at all (e.g. an unsupported mask count) and for
    /// cancellation before any incumbent exists.
    fn decompose(
        &self,
        graph: &LayoutGraph,
        params: &DecomposeParams,
        budget: &Budget,
    ) -> Result<Decomposition, MpldError>;

    /// Convenience wrapper: decomposes with [`Budget::unlimited`].
    ///
    /// # Panics
    ///
    /// Panics if the engine rejects the request (an unlimited budget never
    /// exhausts, so the only failures are unsupported parameters). Intended
    /// for tests, benches, and examples; production paths should call
    /// [`Decomposer::decompose`].
    fn decompose_unbounded(&self, graph: &LayoutGraph, params: &DecomposeParams) -> Decomposition {
        match self.decompose(graph, params, &Budget::unlimited()) {
            Ok(d) => d,
            Err(e) => panic!("{} failed on an unlimited budget: {e}", self.name()),
        }
    }
}

/// Deterministic first-fit greedy coloring.
///
/// Visits nodes in index order; each node takes the color in `0..k` with
/// the fewest same-colored conflict neighbors among already-colored nodes
/// (stitch mismatches break ties, then the lowest color). Linear time,
/// never fails — engines use it as the guaranteed incumbent when a
/// budgeted search expires before reaching any leaf.
pub fn greedy_coloring(graph: &LayoutGraph, k: u8) -> Coloring {
    let n = graph.num_nodes();
    let k = k.max(1);
    let mut coloring = vec![u8::MAX; n];
    for v in 0..n {
        let mut best_color = 0u8;
        let mut best_score = u64::MAX;
        for c in 0..k {
            let mut conflicts = 0u64;
            for &u in graph.conflict_neighbors(v as NodeId) {
                if coloring[u as usize] == c {
                    conflicts += 1;
                }
            }
            let mut stitches = 0u64;
            for &u in graph.stitch_neighbors(v as NodeId) {
                let cu = coloring[u as usize];
                if cu != u8::MAX && cu != c {
                    stitches += 1;
                }
            }
            // Conflicts dominate stitches (alpha < 1 in every standard
            // objective); scale keeps the comparison integral.
            let score = conflicts * 1000 + stitches;
            if score < best_score {
                best_score = score;
                best_color = c;
            }
        }
        coloring[v] = best_color;
    }
    coloring
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_tpl() {
        let p = DecomposeParams::default();
        assert_eq!(p.k, 3);
        assert!((p.alpha - 0.1).abs() < 1e-12);
        assert_eq!(DecomposeParams::tpl(), p);
        assert_eq!(DecomposeParams::qpl().k, 4);
    }

    #[test]
    fn from_coloring_evaluates() {
        let g = LayoutGraph::homogeneous(2, vec![(0, 1)]).unwrap();
        let d = Decomposition::from_coloring(&g, vec![1, 1], 0.1);
        assert_eq!(d.cost.conflicts, 1);
        assert_eq!(d.certainty, Certainty::Heuristic);
        let d = Decomposition::from_coloring(&g, vec![0, 1], 0.1);
        assert_eq!(d.cost.conflicts, 0);
    }

    #[test]
    fn try_from_coloring_rejects_wrong_length() {
        let g = LayoutGraph::homogeneous(2, vec![(0, 1)]).unwrap();
        let err = Decomposition::try_from_coloring(&g, vec![0, 1, 2], 0.1).unwrap_err();
        assert_eq!(
            err,
            MpldError::ColoringMismatch {
                expected: 2,
                got: 3
            }
        );
    }

    #[test]
    fn greedy_coloring_is_valid_and_proper_on_a_triangle() {
        let g = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let c = greedy_coloring(&g, 3);
        assert_eq!(c.len(), 3);
        assert!(c.iter().all(|&x| x < 3));
        assert_eq!(g.evaluate(&c, 0.1).conflicts, 0);
    }

    #[test]
    fn with_certainty_retags() {
        let g = LayoutGraph::homogeneous(1, vec![]).unwrap();
        let d = Decomposition::from_coloring(&g, vec![0], 0.1).with_certainty(Certainty::Certified);
        assert_eq!(d.certainty, Certainty::Certified);
    }
}
