//! Property tests for the quantized frozen planes: `F32` precision is
//! bit-identical to the default path, and the `F16` / `Int8` planes stay
//! within their analytic tolerance of it — close enough for routing
//! scores, while the trust ladder in `mpld-core` guards the decisions.

use mpld_gnn::{ColorGnn, InferBatch, RgcnClassifier};
use mpld_graph::{Budget, DecomposeParams, LayoutGraph};
use mpld_tensor::Precision;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Random heterogeneous layout graph on 1..=10 nodes (same shape as the
/// frozen-equivalence generator).
fn arb_layout() -> impl Strategy<Value = LayoutGraph> {
    (1usize..=10).prop_flat_map(|n| {
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| ((u + 1)..n as u32).map(move |v| (u, v)))
            .collect();
        let np = pairs.len();
        (
            prop::collection::vec(proptest::prelude::prop::bool::ANY, np.max(1)),
            prop::collection::vec(0u32..3, n),
        )
            .prop_map(move |(present, feats)| {
                let mut conflict = Vec::new();
                let mut stitch = Vec::new();
                for (&(u, v), &keep) in pairs.iter().zip(&present) {
                    if !keep {
                        continue;
                    }
                    if feats[u as usize] == feats[v as usize] {
                        stitch.push((u, v));
                    } else {
                        conflict.push((u, v));
                    }
                }
                LayoutGraph::new(feats, conflict, stitch).expect("valid random graph")
            })
    })
}

/// Random homogeneous (no-stitch) graph for ColorGNN.
fn arb_homogeneous() -> impl Strategy<Value = LayoutGraph> {
    (1usize..=9).prop_flat_map(|n| {
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| ((u + 1)..n as u32).map(move |v| (u, v)))
            .collect();
        prop::collection::vec(proptest::prelude::prop::bool::ANY, pairs.len().max(1)).prop_map(
            move |mask| {
                let edges = pairs
                    .iter()
                    .zip(&mask)
                    .filter(|(_, &m)| m)
                    .map(|(&e, _)| e)
                    .collect();
                LayoutGraph::homogeneous(n, edges).expect("valid random graph")
            },
        )
    })
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `Precision::F32` through the precision-selecting entry points is
    /// the same code path as the default ones — bitwise equal.
    #[test]
    fn f32_precision_is_bit_identical(
        gs in prop::collection::vec(arb_layout(), 1..5),
        seed in 0u64..500,
    ) {
        let refs: Vec<&LayoutGraph> = gs.iter().collect();
        for model in [RgcnClassifier::selector(seed), RgcnClassifier::redundancy(seed)] {
            let frozen = model.freeze();
            let enc = InferBatch::new(&refs);
            let base = frozen.infer_encoded(&enc);
            let via = frozen.infer_encoded_with(&enc, Precision::F32);
            for (a, b) in base.probs.iter().zip(&via.probs) {
                prop_assert_eq!(
                    a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                );
            }
            for (a, b) in base.graph_embeddings.iter().zip(&via.graph_embeddings) {
                prop_assert_eq!(
                    a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                );
            }
        }
    }

    /// The quantized planes track the f32 forward within tolerance:
    /// binary16 rounding for `F16`, per-row scale/2 dequantization error
    /// for `Int8` — compounded over two GCN layers plus the head, hence
    /// the looser bounds.
    #[test]
    fn quant_planes_track_f32_within_tolerance(
        gs in prop::collection::vec(arb_layout(), 1..5),
        seed in 0u64..500,
    ) {
        let refs: Vec<&LayoutGraph> = gs.iter().collect();
        for model in [RgcnClassifier::selector(seed), RgcnClassifier::redundancy(seed)] {
            let frozen = model.freeze();
            let enc = InferBatch::new(&refs);
            let f32_out = frozen.infer_encoded(&enc);
            for (precision, prob_tol, emb_tol) in [
                (Precision::F16, 2e-2f32, 2e-2f32),
                (Precision::Int8, 1e-1, 1e-1),
            ] {
                let q = frozen.infer_encoded_with(&enc, precision);
                prop_assert_eq!(q.probs.len(), f32_out.probs.len());
                for (a, b) in q.probs.iter().zip(&f32_out.probs) {
                    let d = max_abs_diff(a, b);
                    prop_assert!(
                        d <= prob_tol,
                        "{} probs drift {} beyond {}", precision, d, prob_tol
                    );
                }
                for (a, b) in q.graph_embeddings.iter().zip(&f32_out.graph_embeddings) {
                    let scale = 1.0 + b.iter().fold(0.0f32, |m, x| m.max(x.abs()));
                    let d = max_abs_diff(a, b);
                    prop_assert!(
                        d <= emb_tol * scale,
                        "{} embedding drift {} beyond {}", precision, d, emb_tol * scale
                    );
                }
                for (a, b) in q.node_embeddings.iter().zip(&f32_out.node_embeddings) {
                    prop_assert_eq!(a.rows(), b.rows());
                    let scale =
                        1.0 + b.as_slice().iter().fold(0.0f32, |m, x| m.max(x.abs()));
                    let d = max_abs_diff(a.as_slice(), b.as_slice());
                    prop_assert!(
                        d <= emb_tol * scale,
                        "{} node drift {} beyond {}", precision, d, emb_tol * scale
                    );
                }
            }
        }
    }

    /// ColorGNN's f16 belief plane: same RNG schedule, structurally
    /// valid colorings, and (since the graphs here are tiny and the
    /// restart schedule identical) costs no worse than 1 conflict off
    /// the f32 run. The F32 precision path is exactly the default one.
    #[test]
    fn colorgnn_f16_beliefs_stay_valid(
        gs in prop::collection::vec(arb_homogeneous(), 1..4),
        seed in 0u64..500,
    ) {
        let refs: Vec<&LayoutGraph> = gs.iter().collect();
        let gnn = ColorGnn::new(seed);
        let frozen = gnn.freeze();
        let params = DecomposeParams::tpl();
        let budget = Budget::unlimited();

        let mut rng = SmallRng::seed_from_u64(seed ^ 0x51);
        let f32_out = frozen.decompose_batch_with_rng(&refs, &params, &budget, &mut rng);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x51);
        let f32_via =
            frozen.decompose_batch_with_rng_prec(&refs, &params, &budget, &mut rng, Precision::F32);
        for (a, b) in f32_out.iter().zip(&f32_via) {
            prop_assert_eq!(&a.coloring, &b.coloring);
            prop_assert_eq!(a.cost, b.cost);
        }

        let mut rng = SmallRng::seed_from_u64(seed ^ 0x51);
        let f16_out =
            frozen.decompose_batch_with_rng_prec(&refs, &params, &budget, &mut rng, Precision::F16);
        prop_assert_eq!(f16_out.len(), refs.len());
        for (d, g) in f16_out.iter().zip(&refs) {
            prop_assert_eq!(d.coloring.len(), g.num_nodes());
            prop_assert!(d.coloring.iter().all(|&c| c < params.k));
        }
    }
}
