//! End-to-end test of the adaptive framework: offline training on a few
//! circuits, online decomposition of a held-out circuit, checked against
//! the exact optimum.

use mpld::{prepare, run_pipeline, train_framework, OfflineConfig, TrainingData};
use mpld_gnn::TrainConfig;
use mpld_graph::DecomposeParams;
use mpld_ilp::IlpDecomposer;
use mpld_layout::iscas_suite;

fn quick_config() -> OfflineConfig {
    OfflineConfig {
        rgcn: TrainConfig {
            epochs: 4,
            lr: 0.01,
            batch: 16,
            balance: true,
        },
        ..OfflineConfig::default()
    }
}

#[test]
fn adaptive_framework_is_optimal_on_held_out_circuit() {
    let params = DecomposeParams::tpl();
    let suite = iscas_suite();

    // Train on C499 + C880, hold out C432.
    let train_preps: Vec<_> = suite[1..3]
        .iter()
        .map(|c| prepare(&c.generate(), &params))
        .collect();
    let mut data = TrainingData::default();
    for p in &train_preps {
        data.add_layout_capped(p, &params, 60);
    }
    let fw = train_framework(&data, &params, &quick_config());

    let test = prepare(&suite[0].generate(), &params);
    let adaptive = fw.decompose_prepared(&test);
    let optimal = run_pipeline(&test, &IlpDecomposer::new(), &params);

    // The paper's headline: the adaptive framework preserves optimality.
    assert_eq!(
        adaptive.pipeline.cost.value(params.alpha),
        optimal.cost.value(params.alpha),
        "adaptive decomposition is not optimal: {:?} vs {:?}",
        adaptive.pipeline.cost,
        optimal.cost
    );

    // Every unit was routed somewhere and the counts add up.
    let u = &adaptive.usage;
    assert_eq!(u.matching + u.colorgnn + u.ilp + u.ec, test.units.len());
    assert!(
        u.colorgnn + u.matching > 0,
        "no GNN-driven decompositions at all"
    );
}

#[test]
fn batched_and_unbatched_framework_agree() {
    let params = DecomposeParams::tpl();
    let suite = iscas_suite();
    let train_prep = prepare(&suite[1].generate(), &params);
    let mut data = TrainingData::default();
    data.add_layout_capped(&train_prep, &params, 50);
    let fw = train_framework(&data, &params, &quick_config());

    let test = prepare(&suite[0].generate(), &params);
    let batched = fw.decompose_prepared(&test);
    let unbatched = fw.decompose_prepared_unbatched(&test);
    // Engines may differ only through ColorGNN randomness; the cost value
    // must agree because both paths guard ColorGNN results and fall back
    // to exact engines otherwise.
    assert_eq!(
        batched.pipeline.cost.value(params.alpha),
        unbatched.pipeline.cost.value(params.alpha)
    );
    assert_eq!(batched.usage.matching, unbatched.usage.matching);
}

#[test]
fn parallel_adaptive_matches_serial_across_thread_counts() {
    let params = DecomposeParams::tpl();
    let suite = iscas_suite();
    let train_prep = prepare(&suite[1].generate(), &params);
    let mut data = TrainingData::default();
    data.add_layout_capped(&train_prep, &params, 50);
    let fw = train_framework(&data, &params, &quick_config());
    let test = prepare(&suite[0].generate(), &params);

    // ColorGNN sampling consumes an RNG stream per call; reseed before
    // every run so all five runs see the same stream and any difference
    // can only come from the parallel tail itself.
    fw.colorgnn.reseed(99);
    let serial = fw.decompose_prepared(&test);
    let optimal = run_pipeline(&test, &IlpDecomposer::new(), &params);
    assert_eq!(
        serial.pipeline.cost.value(params.alpha),
        optimal.cost.value(params.alpha)
    );

    for threads in [1usize, 2, 8] {
        fw.colorgnn.reseed(99);
        let par = fw.decompose_prepared_parallel(&test, threads);
        assert_eq!(
            par.pipeline.cost, serial.pipeline.cost,
            "cost diverged at {threads} threads"
        );
        assert_eq!(
            par.usage, serial.usage,
            "usage diverged at {threads} threads"
        );
        assert_eq!(
            par.unit_engines, serial.unit_engines,
            "per-unit engines diverged at {threads} threads"
        );
        // Memoized transfers are re-verified against each member's own
        // cost function inside the framework; check the assembled
        // coloring is valid end to end as well.
        assert_eq!(
            par.pipeline
                .decomposition
                .feature_colors
                .iter()
                .filter(|&&c| usize::from(c) >= usize::from(params.k))
                .count(),
            0
        );
    }
}

#[test]
fn memo_cache_transfers_are_reverified_and_optimal() {
    // C880 has the largest unit tail of the suite generators, so it is the
    // layout where isomorphic-unit dedup actually triggers.
    let params = DecomposeParams::tpl();
    let suite = iscas_suite();
    let train_prep = prepare(&suite[0].generate(), &params);
    let mut data = TrainingData::default();
    data.add_layout_capped(&train_prep, &params, 50);
    let fw = train_framework(&data, &params, &quick_config());

    let test = prepare(&suite[2].generate(), &params);
    fw.colorgnn.reseed(7);
    let par = fw.decompose_prepared_parallel(&test, 2);
    let optimal = run_pipeline(&test, &IlpDecomposer::new(), &params);
    // Every transferred coloring passed the member-graph re-verification,
    // so the assembled cost must still be exactly optimal.
    assert_eq!(
        par.pipeline.cost.value(params.alpha),
        optimal.cost.value(params.alpha)
    );
    // The serial paths never memoize.
    fw.colorgnn.reseed(7);
    let serial = fw.decompose_prepared(&test);
    assert_eq!(serial.memo_hits, 0);
}

#[test]
fn quadruple_patterning_pipeline_is_trivially_free() {
    // At k = 4 the hide-small-degree rule (conflict degree < 4) strips the
    // benchmark layouts almost entirely — greedy recovery colors them with
    // zero cost. This is the "more masks make decomposition easy" story
    // behind the paper's flexibility claim.
    let params = DecomposeParams::qpl();
    let suite = iscas_suite();
    let mut tpl_total = 0.0;
    for circuit in &suite[..3] {
        let prep = prepare(&circuit.generate(), &params);
        let r = run_pipeline(&prep, &IlpDecomposer::new(), &params);
        assert_eq!(
            r.cost.value(params.alpha),
            0.0,
            "{} should be free at k = 4, got {}",
            circuit.name,
            r.cost
        );
        assert!(r.decomposition.feature_colors.iter().all(|&c| c < 4));
        // The TPL decomposition of the same circuits costs something.
        let tpl_prep = prepare(&circuit.generate(), &DecomposeParams::tpl());
        let tpl = run_pipeline(&tpl_prep, &IlpDecomposer::new(), &DecomposeParams::tpl());
        tpl_total += tpl.cost.value(0.1);
    }
    // Which individual circuit is non-free at k = 3 depends on the
    // generator's RNG stream, but the suite as a whole must not be: if
    // every layout were free at TPL the benchmark would say nothing.
    assert!(
        tpl_total > 0.0,
        "all of C432/C499/C880 unexpectedly free at k = 3"
    );
}

#[test]
fn disabling_colorgnn_preserves_cost() {
    let params = DecomposeParams::tpl();
    let suite = iscas_suite();
    let train_prep = prepare(&suite[2].generate(), &params);
    let mut data = TrainingData::default();
    data.add_layout_capped(&train_prep, &params, 50);
    let mut fw = train_framework(&data, &params, &quick_config());

    let test = prepare(&suite[0].generate(), &params);
    fw.use_colorgnn = true;
    let with_gnn = fw.decompose_prepared(&test);
    fw.use_colorgnn = false;
    let without = fw.decompose_prepared(&test);
    assert_eq!(
        with_gnn.pipeline.cost.value(params.alpha),
        without.pipeline.cost.value(params.alpha),
        "'Ours' and 'Ours w. GNN' must both stay optimal"
    );
    assert_eq!(without.usage.colorgnn, 0);
}
