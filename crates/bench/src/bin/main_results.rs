//! One-pass harness for every framework-dependent result: trains one
//! adaptive framework per leave-2-out fold and emits Table IV (cost),
//! Table V (runtime), Table VII (layout statistics + ColorGNN vs ILP),
//! Fig. 9 (runtime breakdown), and Fig. 10 (usage breakdown) from the
//! same trained models. The standalone `table4`/`table5`/... binaries
//! compute identical numbers; this one avoids retraining per table.

use mpld::{layout_stats, run_pipeline, TimingBreakdown, UsageBreakdown};
use mpld_bench::{fmt_duration, print_table, train_fold, Bench};
use mpld_ec::EcDecomposer;
use mpld_graph::{Budget, Decomposer, LayoutGraph};
use mpld_ilp::encode::BipDecomposer;
use mpld_sdp::SdpDecomposer;
use std::time::{Duration, Instant};

fn main() {
    let bench = Bench::load();
    let n = bench.circuits.len();
    let a = bench.params.alpha;

    // Per-circuit measurements.
    let mut ours_cost = vec![f64::NAN; n];
    let mut gnn_cost = vec![f64::NAN; n];
    let mut ours_time = vec![Duration::ZERO; n];
    let mut gnn_time = vec![Duration::ZERO; n];
    let mut usage = UsageBreakdown::default();
    let mut timing = TimingBreakdown::default();
    // Table VII extras.
    let mut pred_ns = vec![0usize; n];
    let mut t7_ilp_cost = vec![0f64; n];
    let mut t7_gnn_cost = vec![0f64; n];
    let mut t7_ilp_time = vec![Duration::ZERO; n];
    let mut t7_gnn_time = vec![Duration::ZERO; n];

    for (train_idx, test_idx) in bench.folds() {
        if train_idx.is_empty() {
            continue;
        }
        let mut fw = train_fold(&bench, &train_idx);
        let exact = BipDecomposer::new();
        for &ci in &test_idx {
            let prep = &bench.prepared[ci];
            fw.use_colorgnn = false;
            let ro = fw.decompose_prepared(prep);
            ours_cost[ci] = ro.pipeline.cost.value(a);
            ours_time[ci] = ro.pipeline.decompose_time;
            fw.use_colorgnn = true;
            let rg = fw.decompose_prepared(prep);
            gnn_cost[ci] = rg.pipeline.cost.value(a);
            gnn_time[ci] = rg.pipeline.decompose_time;
            usage.matching += rg.usage.matching;
            usage.colorgnn += rg.usage.colorgnn;
            usage.ilp += rg.usage.ilp;
            usage.ec += rg.usage.ec;
            usage.colorgnn_fallbacks += rg.usage.colorgnn_fallbacks;
            timing.matching += rg.timing.matching;
            timing.selection += rg.timing.selection;
            timing.redundancy += rg.timing.redundancy;
            timing.colorgnn += rg.timing.colorgnn;
            timing.ilp += rg.timing.ilp;
            timing.ec += rg.timing.ec;

            // Table VII: the predicted non-stitch set on this circuit.
            let graphs: Vec<&LayoutGraph> = prep.units.iter().map(|u| &u.hetero).collect();
            if !graphs.is_empty() {
                let probs = fw.redundancy.predict_batch(&graphs);
                let parents: Vec<LayoutGraph> = graphs
                    .iter()
                    .zip(&probs)
                    .filter(|(g, p)| !g.has_stitches() || p[0] > fw.redundancy_bar)
                    .map(|(g, _)| g.merge_stitch_edges().0)
                    .collect();
                pred_ns[ci] = parents.len();
                let refs: Vec<&LayoutGraph> = parents.iter().collect();
                let t = Instant::now();
                let results =
                    fw.colorgnn
                        .decompose_batch(&refs, &bench.params, &Budget::unlimited());
                t7_gnn_time[ci] = t.elapsed();
                t7_gnn_cost[ci] = results.iter().map(|d| d.cost.value(a)).sum();
                let t = Instant::now();
                t7_ilp_cost[ci] = refs
                    .iter()
                    .map(|g| exact.decompose_unbounded(g, &bench.params).cost.value(a))
                    .sum();
                t7_ilp_time[ci] = t.elapsed();
            }
        }
        eprintln!("fold tested {test_idx:?}");
    }

    // Baselines.
    let mut rows4 = Vec::new();
    let mut rows5 = Vec::new();
    let mut totals4 = [0f64; 5];
    let mut totals5 = [Duration::ZERO; 5];
    for ci in 0..n {
        let prep = &bench.prepared[ci];
        let ilp = run_pipeline(prep, &BipDecomposer::new(), &bench.params);
        let sdp = run_pipeline(prep, &SdpDecomposer::new(), &bench.params);
        let ec = run_pipeline(prep, &EcDecomposer::new(), &bench.params);
        let c4 = [
            ilp.cost.value(a),
            sdp.cost.value(a),
            ec.cost.value(a),
            ours_cost[ci],
            gnn_cost[ci],
        ];
        let c5 = [
            ilp.decompose_time,
            sdp.decompose_time,
            ec.decompose_time,
            ours_time[ci],
            gnn_time[ci],
        ];
        for (t, v) in totals4.iter_mut().zip(c4) {
            if !v.is_nan() {
                *t += v;
            }
        }
        for (t, v) in totals5.iter_mut().zip(c5) {
            *t += v;
        }
        rows4.push(vec![
            bench.circuits[ci].name.to_string(),
            format!("{:.1}", c4[0]),
            format!("{:.1}", c4[1]),
            format!("{:.1}", c4[2]),
            if c4[3].is_nan() {
                "-".into()
            } else {
                format!("{:.1}", c4[3])
            },
            if c4[4].is_nan() {
                "-".into()
            } else {
                format!("{:.1}", c4[4])
            },
        ]);
        rows5.push(vec![
            bench.circuits[ci].name.to_string(),
            fmt_duration(c5[0]),
            fmt_duration(c5[1]),
            fmt_duration(c5[2]),
            fmt_duration(c5[3]),
            fmt_duration(c5[4]),
        ]);
        eprintln!("{} baselines measured", bench.circuits[ci].name);
    }
    let ratio4 = |i: usize| format!("{:.3}", totals4[i] / totals4[0].max(1e-12));
    rows4.push(vec![
        "total".into(),
        format!("{:.1}", totals4[0]),
        format!("{:.1}", totals4[1]),
        format!("{:.1}", totals4[2]),
        format!("{:.1}", totals4[3]),
        format!("{:.1}", totals4[4]),
    ]);
    rows4.push(vec![
        "ratio".into(),
        "1.000".into(),
        ratio4(1),
        ratio4(2),
        ratio4(3),
        ratio4(4),
    ]);
    let ratio5 = |i: usize| {
        format!(
            "{:.3}",
            totals5[i].as_secs_f64() / totals5[0].as_secs_f64().max(1e-12)
        )
    };
    rows5.push(vec![
        "total".into(),
        fmt_duration(totals5[0]),
        fmt_duration(totals5[1]),
        fmt_duration(totals5[2]),
        fmt_duration(totals5[3]),
        fmt_duration(totals5[4]),
    ]);
    rows5.push(vec![
        "ratio".into(),
        "1.000".into(),
        ratio5(1),
        ratio5(2),
        ratio5(3),
        ratio5(4),
    ]);

    println!("\nTable IV: decomposition cost (cn# + 0.1 st#)\n");
    print_table(
        &["circuit", "ILP", "SDP", "EC", "Ours", "Ours w. GNN"],
        &rows4,
    );
    println!("\npaper shape: ILP optimal; EC/SDP slightly above; Ours and Ours w. GNN match ILP.");

    println!("\nTable V: decomposition runtime (one thread; preprocessing excluded)\n");
    print_table(
        &["circuit", "ILP", "SDP", "EC", "Ours", "Ours w. GNN"],
        &rows5,
    );
    println!("\npaper shape: ILP slowest by far; Ours ~12.3% of ILP; Ours w. GNN ~4.2% of ILP.");

    // Table VII.
    let mut rows7 = Vec::new();
    let (mut tg, mut tnsc, mut tns, mut tpred) = (0usize, 0usize, 0usize, 0usize);
    for ci in 0..n {
        let s = layout_stats(&bench.prepared[ci], &bench.params);
        tg += s.graphs;
        tnsc += s.no_stitch_candidates;
        tns += s.no_stitch_optimal;
        tpred += pred_ns[ci];
        rows7.push(vec![
            bench.circuits[ci].name.to_string(),
            s.graphs.to_string(),
            s.no_stitch_candidates.to_string(),
            s.no_stitch_optimal.to_string(),
            pred_ns[ci].to_string(),
            format!("{:.1}", t7_ilp_cost[ci]),
            format!("{:.1}", t7_gnn_cost[ci]),
            fmt_duration(t7_ilp_time[ci]),
            fmt_duration(t7_gnn_time[ci]),
        ]);
    }
    rows7.push(vec![
        "total".into(),
        tg.to_string(),
        tnsc.to_string(),
        tns.to_string(),
        tpred.to_string(),
        format!("{:.1}", t7_ilp_cost.iter().sum::<f64>()),
        format!("{:.1}", t7_gnn_cost.iter().sum::<f64>()),
        fmt_duration(t7_ilp_time.iter().sum()),
        fmt_duration(t7_gnn_time.iter().sum()),
    ]);
    println!("\nTable VII: layout statistics and GNN decomposer results\n");
    print_table(
        &[
            "circuit",
            "|G|",
            "|nsc-G|",
            "|ns-G|",
            "|pred ns-G|",
            "ILP cost",
            "GNN cost",
            "ILP time",
            "GNN time",
        ],
        &rows7,
    );
    println!(
        "\n|ns-G| / |G| = {:.1}% (paper: 91.1%)",
        100.0 * tns as f64 / tg.max(1) as f64
    );

    // Fig. 9.
    let sum = timing.total().as_secs_f64().max(1e-12);
    let pct = |d: Duration| format!("{:.2}%", 100.0 * d.as_secs_f64() / sum);
    println!("\nFig. 9: runtime breakdown of the adaptive framework\n");
    print_table(
        &["category", "time", "share"],
        &[
            vec![
                "ILP decomposition".into(),
                fmt_duration(timing.ilp),
                pct(timing.ilp),
            ],
            vec![
                "EC decomposition".into(),
                fmt_duration(timing.ec),
                pct(timing.ec),
            ],
            vec![
                "ColorGNN decomposition".into(),
                fmt_duration(timing.colorgnn),
                pct(timing.colorgnn),
            ],
            vec![
                "selection (embed)".into(),
                fmt_duration(timing.selection),
                pct(timing.selection),
            ],
            vec![
                "library matching".into(),
                fmt_duration(timing.matching),
                pct(timing.matching),
            ],
            vec![
                "redundancy prediction".into(),
                fmt_duration(timing.redundancy),
                pct(timing.redundancy),
            ],
        ],
    );
    let selected = timing.ilp + timing.ec + timing.colorgnn;
    println!(
        "\nselected decomposers account for {:.2}% (paper: ILP + DL = 84.31%)",
        100.0 * selected.as_secs_f64() / sum
    );

    // Fig. 10.
    let total = (usage.matching + usage.colorgnn + usage.ilp + usage.ec).max(1);
    let upct = |x: usize| format!("{:.2}%", 100.0 * x as f64 / total as f64);
    println!("\nFig. 10: decomposer usage breakdown ({total} simplified graphs)\n");
    print_table(
        &["engine", "graphs", "share"],
        &[
            vec![
                "ColorGNN".into(),
                usage.colorgnn.to_string(),
                upct(usage.colorgnn),
            ],
            vec![
                "library matching".into(),
                usage.matching.to_string(),
                upct(usage.matching),
            ],
            vec!["EC".into(), usage.ec.to_string(), upct(usage.ec)],
            vec!["ILP".into(), usage.ilp.to_string(), upct(usage.ilp)],
        ],
    );
    println!(
        "\nColorGNN fallbacks to exact engines: {} (paper: ColorGNN 86.11%, ILP 2.07%)",
        usage.colorgnn_fallbacks
    );
}
