//! The faithful 0-1 ILP encoding of the TPLD objective (Eq. 3 of the
//! paper), solved with the generic [`crate::bip`] engine.
//!
//! Each node's color is encoded with two bits `x_{i,1}, x_{i,2}`; for
//! triple patterning the combination `(1, 1)` is excluded. Per conflict
//! edge, two auxiliary bits detect same-bit agreement, and a per-feature-
//! pair variable `C_{mn}` caps the conflict cost at one per pair, exactly
//! as in Eq. (3c)–(3g). Stitch variables pay `alpha` whenever the two
//! subfeatures take different colors.

use crate::bip::Bip;
use mpld_graph::{
    greedy_coloring, Budget, Certainty, CostBreakdown, DecomposeParams, Decomposer, Decomposition,
    LayoutGraph, MpldError,
};
use std::collections::HashMap;

/// Scale factor turning the fractional stitch weight into integers.
const SCALE: f64 = 1000.0;

/// A [`Decomposer`] backed by the faithful Eq. (3) BIP encoding.
///
/// Slower than [`crate::IlpDecomposer`] but textbook-faithful; intended for
/// validation and small graphs.
///
/// # Example
///
/// ```
/// use mpld_graph::{Decomposer, DecomposeParams, LayoutGraph};
/// use mpld_ilp::encode::BipDecomposer;
///
/// let g = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
/// let d = BipDecomposer::new().decompose_unbounded(&g, &DecomposeParams::tpl());
/// assert_eq!(d.cost.conflicts, 0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BipDecomposer {
    _private: (),
}

impl BipDecomposer {
    /// Creates the BIP-encoding decomposer.
    pub fn new() -> Self {
        BipDecomposer { _private: () }
    }
}

impl Decomposer for BipDecomposer {
    fn name(&self) -> &'static str {
        "ILP"
    }

    fn decompose(
        &self,
        graph: &LayoutGraph,
        params: &DecomposeParams,
        budget: &Budget,
    ) -> Result<Decomposition, MpldError> {
        if params.k != 3 && params.k != 4 {
            return Err(MpldError::Unsupported {
                engine: self.name(),
                reason: format!(
                    "the two-bit Eq. (3) encoding supports k = 3 or 4, got k = {}",
                    params.k
                ),
            });
        }
        let model = encode_tpld(graph, params);
        let (sol, exhausted) = model.bip.solve_under(None, budget);
        let (coloring, certainty) = match (sol, exhausted) {
            (Some(s), false) => (model.decode(&s.values), Certainty::Certified),
            (Some(s), true) => (model.decode(&s.values), Certainty::BudgetExhausted),
            // Budget expired before the search reached any leaf: fall back
            // to the linear-time greedy incumbent (the anytime contract —
            // a valid coloring, never an error).
            (None, true) => (greedy_coloring(graph, params.k), Certainty::BudgetExhausted),
            (None, false) => {
                return Err(MpldError::Infeasible {
                    engine: self.name(),
                    reason: "the TPLD encoding admits every coloring, yet no leaf was found".into(),
                })
            }
        };
        #[cfg(feature = "failpoints")]
        mpld_graph::failpoints::inject_error("ilp.bip.result", "ILP")?;
        #[cfg_attr(not(feature = "failpoints"), allow(unused_mut))]
        let mut d = Decomposition::try_from_coloring(graph, coloring, params.alpha)?
            .with_certainty(certainty);
        #[cfg(feature = "failpoints")]
        // Corrupt after cost evaluation so only the independent audit can
        // tell the claimed cost is a lie.
        mpld_graph::failpoints::corrupt_coloring("ilp.bip.result", &mut d.coloring, params.k);
        Ok(d)
    }
}

impl BipDecomposer {
    /// Searches for a decomposition strictly cheaper than `known`, or
    /// returns `None` as a proof that `known` is already optimal.
    ///
    /// The known cost becomes the branch-and-bound's starting incumbent
    /// (see [`Bip::solve_bounded`]): verifying a warm start from another
    /// engine is orders of magnitude cheaper than a cold exact solve,
    /// while the outcome is identical — either the strictly better optimum
    /// or the certainty that none exists.
    pub fn decompose_below(
        &self,
        graph: &LayoutGraph,
        params: &DecomposeParams,
        known: &CostBreakdown,
    ) -> Option<Decomposition> {
        self.decompose_below_within(graph, params, known, &Budget::unlimited())
            .0
    }

    /// Budgeted [`BipDecomposer::decompose_below`].
    ///
    /// Returns the strictly-better decomposition (if one was found) and
    /// whether the search was cut short. When the flag is `true` and no
    /// improvement was returned, `known` has **not** been proven optimal —
    /// the caller must treat it as budget-exhausted, not certified.
    pub fn decompose_below_within(
        &self,
        graph: &LayoutGraph,
        params: &DecomposeParams,
        known: &CostBreakdown,
        budget: &Budget,
    ) -> (Option<Decomposition>, bool) {
        let model = encode_tpld(graph, params);
        let conflict_w = SCALE as i64;
        let stitch_w = (params.alpha * SCALE).round() as i64;
        let cutoff = i64::from(known.conflicts) * conflict_w + i64::from(known.stitches) * stitch_w;
        let (sol, exhausted) = model.bip.solve_under(Some(cutoff), budget);
        let certainty = if exhausted {
            Certainty::BudgetExhausted
        } else {
            Certainty::Certified
        };
        let d = sol
            .and_then(|s| {
                // decode always yields one color per node.
                Decomposition::try_from_coloring(graph, model.decode(&s.values), params.alpha).ok()
            })
            .map(|d| d.with_certainty(certainty));
        (d, exhausted)
    }
}

/// The encoded model together with the variable layout needed for
/// decoding.
#[derive(Debug, Clone)]
pub struct TpldModel {
    /// The 0-1 program.
    pub bip: Bip,
    /// `x_bit[i]` = (var of bit 1, var of bit 2) of node `i`.
    x_bit: Vec<(usize, usize)>,
    k: u8,
}

impl TpldModel {
    /// Decodes a BIP solution into a node coloring.
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong length for the model.
    pub fn decode(&self, values: &[bool]) -> Vec<u8> {
        self.x_bit
            .iter()
            .map(|&(b1, b2)| {
                let c = u8::from(values[b1]) + 2 * u8::from(values[b2]);
                c.min(self.k - 1)
            })
            .collect()
    }
}

/// Builds the Eq. (3) encoding of `graph` for `params.k` in `{3, 4}` masks.
///
/// # Panics
///
/// Panics if `params.k` is not 3 or 4 (the two-bit encoding of the paper).
pub fn encode_tpld(graph: &LayoutGraph, params: &DecomposeParams) -> TpldModel {
    assert!(
        params.k == 3 || params.k == 4,
        "the two-bit Eq. (3) encoding supports k = 3 or 4"
    );
    let n = graph.num_nodes();
    let conflict_w = SCALE as i64;
    let stitch_w = (params.alpha * SCALE).round() as i64;

    // Variable layout: first 2n color bits, then per-edge/per-pair/stitch
    // auxiliaries appended dynamically.
    let n_conf = graph.conflict_edges().len();
    let mut pair_of: HashMap<(u32, u32), usize> = HashMap::new();
    for &(u, v) in graph.conflict_edges() {
        let (a, b) = (graph.feature_of(u), graph.feature_of(v));
        let key = if a < b { (a, b) } else { (b, a) };
        let next = pair_of.len();
        pair_of.entry(key).or_insert(next);
    }
    let n_pairs = pair_of.len();
    let n_stitch = graph.stitch_edges().len();

    let x1 = |i: usize| 2 * i;
    let x2 = |i: usize| 2 * i + 1;
    let ce1 = |e: usize| 2 * n + 2 * e;
    let ce2 = |e: usize| 2 * n + 2 * e + 1;
    let cmn = |p: usize| 2 * n + 2 * n_conf + p;
    let sij = |s: usize| 2 * n + 2 * n_conf + n_pairs + s;
    let num_vars = 2 * n + 2 * n_conf + n_pairs + n_stitch;

    let mut bip = Bip::new(num_vars);
    // Objective: sum C_mn * conflict_w + sum s_ij * stitch_w.
    for p in 0..n_pairs {
        bip.set_objective(cmn(p), conflict_w);
    }
    for s in 0..n_stitch {
        bip.set_objective(sij(s), stitch_w);
    }

    // Eq. (3b): exclude color 3 for triple patterning.
    if params.k == 3 {
        for i in 0..n {
            bip.add_constraint(vec![(x1(i), 1), (x2(i), 1)], 1);
        }
    }

    // Symmetry breaking (not in Eq. 3, but cost-preserving): the objective
    // never mentions colors, only agreement, so solutions come in orbits of
    // the k! color permutations. Pin the highest-conflict-degree node to
    // color 0, and one of its neighbors to {0, 1} — every orbit has a
    // representative of this shape, and the branch-and-bound no longer
    // proves the same bound k!/(k-2)! times.
    if n > 0 {
        let u = (0..n as u32)
            .max_by_key(|&v| graph.conflict_degree(v))
            .unwrap_or(0);
        bip.add_constraint(vec![(x1(u as usize), 1)], 0);
        bip.add_constraint(vec![(x2(u as usize), 1)], 0);
        if let Some(&v) = graph
            .conflict_neighbors(u)
            .iter()
            .max_by_key(|&&v| graph.conflict_degree(v))
        {
            bip.add_constraint(vec![(x2(v as usize), 1)], 0);
        }
    }

    // Eq. (3c)–(3g) per conflict edge.
    for (e, &(u, v)) in graph.conflict_edges().iter().enumerate() {
        let (i, j) = (u as usize, v as usize);
        let (a, b) = (graph.feature_of(u), graph.feature_of(v));
        let key = if a < b { (a, b) } else { (b, a) };
        let p = pair_of[&key];
        // x_i1 + x_j1 <= 1 + C_e1
        bip.add_constraint(vec![(x1(i), 1), (x1(j), 1), (ce1(e), -1)], 1);
        // (1 - x_i1) + (1 - x_j1) <= 1 + C_e1  ⇔  -x_i1 - x_j1 - C_e1 <= -1
        bip.add_constraint(vec![(x1(i), -1), (x1(j), -1), (ce1(e), -1)], -1);
        bip.add_constraint(vec![(x2(i), 1), (x2(j), 1), (ce2(e), -1)], 1);
        bip.add_constraint(vec![(x2(i), -1), (x2(j), -1), (ce2(e), -1)], -1);
        // C_e1 + C_e2 <= 1 + C_mn
        bip.add_constraint(vec![(ce1(e), 1), (ce2(e), 1), (cmn(p), -1)], 1);
    }

    // Stitch edges: s_ij >= |x_i1 - x_j1| and |x_i2 - x_j2|.
    for (s, &(u, v)) in graph.stitch_edges().iter().enumerate() {
        let (i, j) = (u as usize, v as usize);
        bip.add_constraint(vec![(x1(i), 1), (x1(j), -1), (sij(s), -1)], 0);
        bip.add_constraint(vec![(x1(i), -1), (x1(j), 1), (sij(s), -1)], 0);
        bip.add_constraint(vec![(x2(i), 1), (x2(j), -1), (sij(s), -1)], 0);
        bip.add_constraint(vec![(x2(i), -1), (x2(j), 1), (sij(s), -1)], 0);
    }

    TpldModel {
        bip,
        x_bit: (0..n).map(|i| (x1(i), x2(i))).collect(),
        k: params.k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute_force, IlpDecomposer};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn triangle_zero_cost() {
        let g = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let d = BipDecomposer::new().decompose_unbounded(&g, &DecomposeParams::tpl());
        assert_eq!(d.cost.conflicts, 0);
    }

    #[test]
    fn k4_one_conflict() {
        let g = LayoutGraph::homogeneous(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .unwrap();
        let d = BipDecomposer::new().decompose_unbounded(&g, &DecomposeParams::tpl());
        assert_eq!(d.cost.conflicts, 1);
        let d4 = BipDecomposer::new().decompose_unbounded(&g, &DecomposeParams::qpl());
        assert_eq!(d4.cost.conflicts, 0);
    }

    #[test]
    fn stitch_is_used_when_cheaper() {
        // A path of conflicts around a split feature: the optimal solution
        // uses the stitch to avoid a conflict (0.1 < 1).
        let g = LayoutGraph::new(
            vec![0, 0, 1, 2, 3, 4],
            vec![
                (0, 2),
                (0, 3),
                (1, 4),
                (1, 5),
                (2, 3),
                (4, 5),
                (2, 4),
                (3, 5),
            ],
            vec![(0, 1)],
        )
        .unwrap();
        let bf = brute_force(&g, &DecomposeParams::tpl());
        let d = BipDecomposer::new().decompose_unbounded(&g, &DecomposeParams::tpl());
        assert_eq!(d.cost.value(0.1), bf.cost.value(0.1));
    }

    #[test]
    fn agrees_with_colorbb_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(99);
        let p = DecomposeParams::tpl();
        for _ in 0..15 {
            let n = rng.gen_range(3..7usize);
            let mut node_feature = Vec::new();
            let mut stitch = Vec::new();
            for f in 0..n {
                let s = node_feature.len() as u32;
                if rng.gen_bool(0.3) {
                    node_feature.extend([f as u32; 2]);
                    stitch.push((s, s + 1));
                } else {
                    node_feature.push(f as u32);
                }
            }
            let total = node_feature.len() as u32;
            let mut conflicts = Vec::new();
            for u in 0..total {
                for v in (u + 1)..total {
                    if node_feature[u as usize] != node_feature[v as usize] && rng.gen_bool(0.45) {
                        conflicts.push((u, v));
                    }
                }
            }
            let g = LayoutGraph::new(node_feature, conflicts, stitch).unwrap();
            let a = BipDecomposer::new().decompose_unbounded(&g, &p);
            let b = IlpDecomposer::new().decompose_unbounded(&g, &p);
            assert_eq!(a.cost.value(0.1), b.cost.value(0.1), "graph: {g:?}");
        }
    }

    #[test]
    #[should_panic(expected = "k = 3 or 4")]
    fn rejects_unsupported_mask_count() {
        let g = LayoutGraph::homogeneous(2, vec![(0, 1)]).unwrap();
        let params = DecomposeParams { k: 5, alpha: 0.1 };
        let _ = encode_tpld(&g, &params);
    }

    #[test]
    fn model_size_is_as_expected() {
        let g = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let m = encode_tpld(&g, &DecomposeParams::tpl());
        // 2*3 color bits + 2*3 edge bits + 3 pair bits + 0 stitches.
        assert_eq!(m.bip.num_vars(), 15);
        // 3 exclusion + 3 symmetry-breaking + 5 per edge * 3 edges.
        assert_eq!(m.bip.num_constraints(), 21);
    }
}
