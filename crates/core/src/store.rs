//! Glue between the framework and the persistent store (`mpld-store`):
//! key derivation from a trained model and store-backed engine
//! construction.
//!
//! The store key binds persisted state to everything that could change
//! what a record means: the serialized-weights digest (model
//! provenance), `k`, `alpha` (bit-exact), the selector's embedding
//! dimension, and the library-config token. Retraining or
//! re-parameterising selects a *different* file; a header mismatch at
//! the keyed path moves the file aside. A stale match is never served.

use crate::engine::Engine;
use crate::framework::AdaptiveFramework;
use crate::training::OfflineConfig;
use mpld_graph::{DecomposeParams, LayoutGraph};
use mpld_matching::{GraphLibrary, LibraryConfig};
use mpld_store::{LoadReport, StoreCaps, StoreKey};
use std::path::Path;

/// Compact textual token for the library-config knobs that shape which
/// graphs the library holds. Part of the store key: a store built with
/// different enumeration bounds must not be matched.
pub fn library_token(cfg: &LibraryConfig) -> String {
    format!(
        "p{}s{}n{}t{}",
        cfg.max_parent_size,
        cfg.max_splits,
        cfg.max_nodes,
        u8::from(cfg.stitches)
    )
}

/// Derives the store key for a model given by its serialized bytes.
/// The embedding dimension is probed from `probe_dim` (the loaded
/// selector) so the key reflects the architecture actually in use.
fn store_key(
    model_digest: u64,
    dim: usize,
    params: &DecomposeParams,
    lib_cfg: &LibraryConfig,
) -> StoreKey {
    StoreKey {
        model_digest,
        k: params.k,
        alpha: params.alpha,
        dim,
        library: library_token(lib_cfg),
    }
}

/// The selector's graph-embedding dimension, probed by embedding a
/// trivial one-node graph (the classifier exposes no static accessor).
fn probe_dim(selector: &mpld_gnn::RgcnClassifier) -> usize {
    #[allow(clippy::expect_used)] // a 1-node graph with no edges is always valid
    let probe = LayoutGraph::homogeneous(1, vec![]).expect("one-node probe graph");
    selector.graph_embedding(&probe).len()
}

/// Builds a store-backed [`Engine`] from serialized model bytes:
///
/// 1. fingerprint the bytes (FNV-64) — the model provenance key;
/// 2. load the framework, sourcing the graph library from the store
///    when a complete, audit-clean dump under the matching key exists
///    (skipping the enumeration rebuild), else rebuilding and
///    persisting the dump for the next process;
/// 3. preload the store's verified tail solves into the engine's
///    solution caches and attach the append writer, so fresh solves
///    feed the next process (the flywheel).
///
/// Returns the engine plus the store's load report.
///
/// # Errors
///
/// `InvalidData` on a malformed model; real store I/O failures
/// (directory creation, open). Store *corruption* is never an error —
/// it degrades to re-solving, visible in the report.
pub fn engine_with_store(
    model_bytes: &[u8],
    params: &DecomposeParams,
    cfg: &OfflineConfig,
    store_dir: &Path,
    caps: StoreCaps,
    cache_cap: Option<usize>,
) -> std::io::Result<(Engine, LoadReport)> {
    engine_with_store_configured(model_bytes, params, cfg, store_dir, caps, cache_cap, |_| {})
}

/// [`engine_with_store`] with a framework hook: `configure` runs on the
/// loaded framework (e.g. to set `precision` or `use_colorgnn`) before
/// it is frozen into the engine. Runtime knobs do not enter the store
/// key — only the serialized weights and layout params do.
#[allow(clippy::too_many_arguments)] // plumbing variant of engine_with_store
pub fn engine_with_store_configured(
    model_bytes: &[u8],
    params: &DecomposeParams,
    cfg: &OfflineConfig,
    store_dir: &Path,
    caps: StoreCaps,
    cache_cap: Option<usize>,
    configure: impl FnOnce(&mut AdaptiveFramework),
) -> std::io::Result<(Engine, LoadReport)> {
    let digest = mpld_store::fnv64(model_bytes);
    let mut opened = None;
    let mut open_err = None;
    let mut lib_loaded = false;
    let mut fw = AdaptiveFramework::load_with_library(
        std::io::Cursor::new(model_bytes),
        params,
        cfg,
        |selector| {
            let key = store_key(digest, probe_dim(selector), params, &cfg.library);
            match mpld_store::open(store_dir, &key, caps) {
                Ok(mut o) => {
                    let lib =
                        o.load.lib.take().map(|entries| {
                            GraphLibrary::from_entries(entries, cfg.library.max_nodes)
                        });
                    lib_loaded = lib.is_some();
                    opened = Some(o);
                    lib
                }
                Err(e) => {
                    open_err = Some(e);
                    None
                }
            }
        },
    )?;
    if let Some(e) = open_err {
        return Err(e);
    }
    let Some(opened) = opened else {
        // `load_with_library` always consults the source once the
        // weights deserialize; reaching here means they did not.
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "model deserialized but store was never opened",
        ));
    };
    configure(&mut fw);
    if !lib_loaded {
        // First process under this key: persist the freshly built
        // library so the next one skips the enumeration rebuild.
        opened.writer.append_lib(fw.library.entries());
    }
    let report = opened.load.report;
    Ok((
        Engine::with_store(fw, opened, lib_loaded, cache_cap),
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_token_is_injective_over_knobs() {
        let base = LibraryConfig::default();
        let token = library_token(&base);
        assert_eq!(token, "p6s1n7t1");
        let no_stitch = LibraryConfig {
            stitches: false,
            ..base
        };
        assert_ne!(token, library_token(&no_stitch));
    }
}
