//! The adaptive decomposition framework (Fig. 7 of the paper).
//!
//! Per simplified unit graph, the online flow is:
//!
//! 1. **Graph matching** — small graphs are matched against the
//!    isomorphism-free library; hits return the stored optimal coloring.
//! 2. **Stitch redundancy prediction** — `RGCN_r` predicts whether all
//!    stitch candidates are redundant; above the confidence bar the stitch
//!    edges are merged and the non-stitch parent graph goes to ColorGNN.
//! 3. **Decomposer selection** — otherwise the selector RGCN routes the
//!    graph to the exact ILP engine or the fast EC engine.
//!
//! Runtime is accounted per category so Fig. 9 (runtime breakdown) and
//! Fig. 10 (usage breakdown) can be reproduced.

use crate::pipeline::{assemble, PipelineResult, PreparedLayout};
use mpld_ec::EcDecomposer;
use mpld_gnn::{ColorGnn, RgcnClassifier};
use mpld_graph::{DecomposeParams, Decomposer, Decomposition, LayoutGraph};
use mpld_ilp::encode::BipDecomposer;
use mpld_matching::GraphLibrary;
use std::time::{Duration, Instant};

/// Which engine decomposed a unit (for Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Library graph matching.
    Matching,
    /// The non-stitch GNN decomposer.
    ColorGnn,
    /// Exact ILP.
    Ilp,
    /// Exact cover.
    Ec,
}

/// Usage counts per engine (Fig. 10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UsageBreakdown {
    /// Units decomposed by library matching.
    pub matching: usize,
    /// Units decomposed by ColorGNN.
    pub colorgnn: usize,
    /// Units decomposed by ILP.
    pub ilp: usize,
    /// Units decomposed by EC.
    pub ec: usize,
    /// ColorGNN attempts that left conflicts and fell back to ILP/EC
    /// (engineering guard, documented in DESIGN.md; counted under the
    /// engine that produced the final result).
    pub colorgnn_fallbacks: usize,
}

/// Cumulative runtime per category (Fig. 9).
#[derive(Debug, Clone, Copy, Default)]
pub struct TimingBreakdown {
    /// Embedding + library matching time.
    pub matching: Duration,
    /// Selector inference time.
    pub selection: Duration,
    /// Redundancy-prediction inference time.
    pub redundancy: Duration,
    /// ColorGNN decomposition time.
    pub colorgnn: Duration,
    /// ILP decomposition time.
    pub ilp: Duration,
    /// EC decomposition time.
    pub ec: Duration,
}

impl TimingBreakdown {
    /// Total accounted runtime.
    pub fn total(&self) -> Duration {
        self.matching + self.selection + self.redundancy + self.colorgnn + self.ilp + self.ec
    }
}

/// Result of adaptively decomposing one prepared layout.
#[derive(Debug)]
pub struct AdaptiveResult {
    /// The standard pipeline result (cost, coloring, pure decompose time).
    pub pipeline: PipelineResult,
    /// Engine usage counts.
    pub usage: UsageBreakdown,
    /// Runtime per category.
    pub timing: TimingBreakdown,
    /// Which engine handled each unit.
    pub unit_engines: Vec<EngineKind>,
}

/// The trained adaptive framework (see module docs).
pub struct AdaptiveFramework {
    /// Selector RGCN (`RGCN` in the paper).
    pub selector: RgcnClassifier,
    /// Stitch-redundancy RGCN (`RGCN_r`).
    pub redundancy: RgcnClassifier,
    /// The non-stitch GNN decomposer.
    pub colorgnn: ColorGnn,
    /// The isomorphism-free graph library.
    pub library: GraphLibrary,
    /// Exact engine — the same faithful Eq. (3) ILP used as the baseline
    /// column in Tables IV/V, so the framework's speedup comes from
    /// *routing*, not from a faster exact solver.
    pub ilp: BipDecomposer,
    /// Fast engine.
    pub ec: EcDecomposer,
    /// Decomposition parameters (k, alpha).
    pub params: DecomposeParams,
    /// Confidence bar `b` for redundancy prediction (paper: 0.99).
    pub redundancy_bar: f32,
    /// Minimum selector confidence required to route a graph to the
    /// (fast but possibly suboptimal) EC engine (default 0.9); below it the exact ILP
    /// runs. Mirrors the paper's emphasis on perfect ILP recall.
    pub ec_threshold: f32,
    /// Whether ColorGNN is enabled ("Ours w. GNN" vs plain "Ours").
    pub use_colorgnn: bool,
}

impl AdaptiveFramework {
    /// Predicted probability that all stitch candidates of `g` are
    /// redundant.
    pub fn redundancy_confidence(&mut self, g: &LayoutGraph) -> f32 {
        // Class 0 = "redundant" by the training-label convention.
        self.redundancy.predict(g)[0]
    }

    /// Selector decision for `g`: 0 = ILP, 1 = EC (requires the EC
    /// confidence to clear [`AdaptiveFramework::ec_threshold`]).
    pub fn select_engine(&mut self, g: &LayoutGraph) -> u8 {
        let p = self.selector.predict(g);
        u8::from(p[1] > self.ec_threshold)
    }

    /// Exact-or-certified decomposition of one unit: when `ec_first`, run
    /// the fast EC engine and accept its result only when it carries an
    /// optimality certificate (see `EcDecomposer::decompose_certified`).
    /// Everything else is decided by (or verified against) the exact ILP.
    /// This is the structural version of the paper's 100%-ILP-recall
    /// selector.
    fn decompose_with_selection(
        &mut self,
        g: &LayoutGraph,
        ec_first: bool,
        timing: &mut TimingBreakdown,
    ) -> (Decomposition, EngineKind) {
        if ec_first {
            let t = Instant::now();
            let (d, certified) = self.ec.decompose_certified(g, &self.params);
            timing.ec += t.elapsed();
            if certified {
                return (d, EngineKind::Ec);
            }
            let t = Instant::now();
            let exact = self.ilp.decompose(g, &self.params);
            timing.ilp += t.elapsed();
            if exact.cost.better_than(&d.cost, self.params.alpha) {
                return (exact, EngineKind::Ilp);
            }
            (d, EngineKind::Ec)
        } else {
            let t = Instant::now();
            let d = self.ilp.decompose(g, &self.params);
            timing.ilp += t.elapsed();
            (d, EngineKind::Ilp)
        }
    }

    /// Decomposes one unit graph, returning the decomposition, the engine
    /// used, and whether a ColorGNN fallback occurred.
    fn decompose_unit(
        &mut self,
        hetero: &LayoutGraph,
        timing: &mut TimingBreakdown,
    ) -> (Decomposition, EngineKind, bool) {
        // 1. Library matching.
        if hetero.num_nodes() <= self.library.max_nodes() {
            let t = Instant::now();
            let hit = self.library.lookup(&mut self.selector, hetero);
            timing.matching += t.elapsed();
            if let Some(d) = hit {
                return (d, EngineKind::Matching, false);
            }
        }

        // 2. Stitch redundancy → ColorGNN on the merged parent graph.
        let mut fallback = false;
        if self.use_colorgnn {
            let t = Instant::now();
            let redundant = if hetero.has_stitches() {
                self.redundancy_confidence(hetero) > self.redundancy_bar
            } else {
                true // no stitch candidates at all: trivially non-stitch
            };
            timing.redundancy += t.elapsed();
            if redundant {
                let t = Instant::now();
                let (parent, map) = hetero.merge_stitch_edges();
                let pd = self.colorgnn.decompose(&parent, &self.params);
                timing.colorgnn += t.elapsed();
                if pd.cost.conflicts == 0 {
                    // Expand the parent coloring to subfeatures (no stitch
                    // is activated, so the cost carries over exactly).
                    let coloring: Vec<u8> =
                        map.iter().map(|&p| pd.coloring[p as usize]).collect();
                    let d = Decomposition::from_coloring(hetero, coloring, self.params.alpha);
                    return (d, EngineKind::ColorGnn, false);
                }
                // The parent graph may genuinely need conflicts or
                // stitches; defer to the exact engines.
                fallback = true;
            }
        }

        // 3. ILP/EC selection with certified EC acceptance.
        let t = Instant::now();
        let ec_first = fallback || self.select_engine(hetero) == 1;
        timing.selection += t.elapsed();
        let (d, engine) = self.decompose_with_selection(hetero, ec_first, timing);
        (d, engine, fallback)
    }

    /// Adaptively decomposes a prepared layout, one unit at a time (no
    /// batched inference). Mostly useful for comparison with the batched
    /// default, [`AdaptiveFramework::decompose_prepared`].
    pub fn decompose_prepared_unbatched(&mut self, prep: &PreparedLayout) -> AdaptiveResult {
        let start = Instant::now();
        let mut timing = TimingBreakdown::default();
        let mut usage = UsageBreakdown::default();
        let mut unit_engines = Vec::with_capacity(prep.units.len());
        let mut unit_results = Vec::with_capacity(prep.units.len());
        for unit in &prep.units {
            let (d, engine, fell_back) = self.decompose_unit(&unit.hetero, &mut timing);
            match engine {
                EngineKind::Matching => usage.matching += 1,
                EngineKind::ColorGnn => usage.colorgnn += 1,
                EngineKind::Ilp => usage.ilp += 1,
                EngineKind::Ec => usage.ec += 1,
            }
            if fell_back {
                usage.colorgnn_fallbacks += 1;
            }
            unit_engines.push(engine);
            unit_results.push(d);
        }
        let decompose_time = start.elapsed();
        let pipeline = assemble(prep, &self.params, unit_results, decompose_time);
        AdaptiveResult { pipeline, usage, timing, unit_engines }
    }

    /// Adaptively decomposes a prepared layout with batched GNN inference
    /// (the paper batches all simplified graphs for efficiency): one RGCN
    /// pass computes embeddings + selector probabilities for every unit,
    /// one `RGCN_r` pass the redundancy confidences, and one batched
    /// ColorGNN run decomposes all predicted-redundant parent graphs.
    pub fn decompose_prepared(&mut self, prep: &PreparedLayout) -> AdaptiveResult {
        let start = Instant::now();
        let mut timing = TimingBreakdown::default();
        let mut usage = UsageBreakdown::default();
        let n = prep.units.len();
        let graphs: Vec<&LayoutGraph> = prep.units.iter().map(|u| &u.hetero).collect();
        if n == 0 {
            let pipeline = assemble(prep, &self.params, Vec::new(), start.elapsed());
            return AdaptiveResult {
                pipeline,
                usage,
                timing,
                unit_engines: Vec::new(),
            };
        }

        // Batched selector pass: embeddings (shared with matching) and
        // ILP/EC probabilities.
        let t = Instant::now();
        let embeddings = self.selector.embeddings_batch(&graphs);
        let selector_probs = self.selector.predict_batch(&graphs);
        timing.selection += t.elapsed();

        // Batched redundancy pass.
        let t = Instant::now();
        let redundancy_probs = self.redundancy.predict_batch(&graphs);
        timing.redundancy += t.elapsed();

        let mut unit_results: Vec<Option<Decomposition>> = vec![None; n];
        let mut unit_engines: Vec<Option<EngineKind>> = vec![None; n];
        let mut guard_failed = vec![false; n];

        // 1. Library matching with the precomputed embeddings.
        let t = Instant::now();
        for (i, g) in graphs.iter().enumerate() {
            if g.num_nodes() <= self.library.max_nodes() {
                let (emb, nodes) = &embeddings[i];
                if let Some(d) = self.library.lookup_with_embeddings(g, emb, nodes) {
                    unit_results[i] = Some(d);
                    unit_engines[i] = Some(EngineKind::Matching);
                    usage.matching += 1;
                }
            }
        }
        timing.matching += t.elapsed();

        // 2. Predicted-redundant units: merge stitches, batch ColorGNN.
        if self.use_colorgnn {
            let t = Instant::now();
            let mut idx = Vec::new();
            let mut parents = Vec::new();
            let mut maps = Vec::new();
            for (i, g) in graphs.iter().enumerate() {
                if unit_results[i].is_some() || g.num_nodes() == 0 {
                    continue;
                }
                let redundant =
                    !g.has_stitches() || redundancy_probs[i][0] > self.redundancy_bar;
                if redundant {
                    let (parent, map) = g.merge_stitch_edges();
                    idx.push(i);
                    parents.push(parent);
                    maps.push(map);
                }
            }
            let parent_refs: Vec<&LayoutGraph> = parents.iter().collect();
            let results = self.colorgnn.decompose_batch(&parent_refs, &self.params);
            for ((&i, pd), map) in idx.iter().zip(results).zip(&maps) {
                if pd.cost.conflicts == 0 {
                    let coloring: Vec<u8> =
                        map.iter().map(|&p| pd.coloring[p as usize]).collect();
                    let d =
                        Decomposition::from_coloring(graphs[i], coloring, self.params.alpha);
                    unit_results[i] = Some(d);
                    unit_engines[i] = Some(EngineKind::ColorGnn);
                    usage.colorgnn += 1;
                } else {
                    usage.colorgnn_fallbacks += 1;
                    guard_failed[i] = true;
                }
            }
            timing.colorgnn += t.elapsed();
        }

        // 3. Remaining units (including ColorGNN-guard failures): ILP/EC
        // per the selector, with certified EC acceptance (see
        // `decompose_with_selection`).
        for (i, g) in graphs.iter().enumerate() {
            if unit_results[i].is_some() {
                continue;
            }
            let ec_first =
                guard_failed[i] || selector_probs[i][1] > self.ec_threshold;
            let (d, engine) = self.decompose_with_selection(g, ec_first, &mut timing);
            match engine {
                EngineKind::Ilp => usage.ilp += 1,
                _ => usage.ec += 1,
            }
            unit_results[i] = Some(d);
            unit_engines[i] = Some(engine);
        }

        let unit_results: Vec<Decomposition> =
            unit_results.into_iter().map(|d| d.expect("every unit decomposed")).collect();
        let unit_engines: Vec<EngineKind> =
            unit_engines.into_iter().map(|e| e.expect("every unit routed")).collect();
        let decompose_time = start.elapsed();
        let pipeline = assemble(prep, &self.params, unit_results, decompose_time);
        AdaptiveResult { pipeline, usage, timing, unit_engines }
    }
}

impl std::fmt::Debug for AdaptiveFramework {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveFramework")
            .field("library_size", &self.library.len())
            .field("redundancy_bar", &self.redundancy_bar)
            .field("use_colorgnn", &self.use_colorgnn)
            .field("params", &self.params)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::prepare;
    use crate::training::{train_framework, OfflineConfig, TrainingData};
    use mpld_layout::{circuit_by_name, Layout};

    fn tiny_framework() -> AdaptiveFramework {
        let params = DecomposeParams::tpl();
        let layout = circuit_by_name("C432").expect("exists").generate();
        let prep = prepare(&layout, &params);
        let mut data = TrainingData::default();
        data.add_layout_capped(&prep, &params, 8);
        let mut cfg = OfflineConfig::default();
        cfg.rgcn.epochs = 1;
        cfg.colorgnn.epochs = 1;
        cfg.library =
            mpld_matching::LibraryConfig { max_parent_size: 4, max_splits: 1, max_nodes: 5, stitches: false };
        train_framework(&data, &params, &cfg)
    }

    #[test]
    fn timing_total_sums_categories() {
        let t = TimingBreakdown {
            matching: Duration::from_millis(1),
            selection: Duration::from_millis(2),
            redundancy: Duration::from_millis(3),
            colorgnn: Duration::from_millis(4),
            ilp: Duration::from_millis(5),
            ec: Duration::from_millis(6),
        };
        assert_eq!(t.total(), Duration::from_millis(21));
    }

    #[test]
    fn empty_layout_yields_empty_result() {
        let params = DecomposeParams::tpl();
        // Two far-apart features: no conflicts, no units.
        let layout = Layout {
            name: "empty".into(),
            d: 100,
            features: vec![
                mpld_geometry::Feature::new(0, vec![mpld_geometry::Rect::new(0, 0, 50, 20)]),
                mpld_geometry::Feature::new(
                    1,
                    vec![mpld_geometry::Rect::new(10_000, 0, 10_050, 20)],
                ),
            ],
        };
        let prep = prepare(&layout, &params);
        assert!(prep.units.is_empty());
        let mut fw = tiny_framework();
        let r = fw.decompose_prepared(&prep);
        assert_eq!(r.pipeline.cost.conflicts, 0);
        assert_eq!(r.usage, UsageBreakdown::default());
        assert!(r.unit_engines.is_empty());
        assert_eq!(r.pipeline.decomposition.feature_colors.len(), 2);
    }

    #[test]
    fn engine_usage_counts_match_units() {
        let params = DecomposeParams::tpl();
        let layout = circuit_by_name("C432").expect("exists").generate();
        let prep = prepare(&layout, &params);
        let mut fw = tiny_framework();
        let r = fw.decompose_prepared(&prep);
        let u = &r.usage;
        assert_eq!(u.matching + u.colorgnn + u.ilp + u.ec, prep.units.len());
        assert_eq!(r.unit_engines.len(), prep.units.len());
        // Cross-check unit_engines against the counters.
        let count = |k: EngineKind| r.unit_engines.iter().filter(|&&e| e == k).count();
        assert_eq!(count(EngineKind::Matching), u.matching);
        assert_eq!(count(EngineKind::ColorGnn), u.colorgnn);
        assert_eq!(count(EngineKind::Ilp), u.ilp);
        assert_eq!(count(EngineKind::Ec), u.ec);
    }
}
