//! Wall-clock / node budgets and cooperative cancellation for solvers.
//!
//! Every decomposition engine accepts a [`Budget`] describing how much work
//! it may spend: an optional wall-clock deadline (measured on a pluggable
//! [`Clock`] so timeout tests are deterministic), an optional node /
//! iteration limit, and an optional [`CancelToken`] that lets another
//! thread abort a search cooperatively.
//!
//! Budget exhaustion is **not** an error: an engine that runs out of budget
//! returns its best-so-far incumbent tagged
//! [`Certainty::BudgetExhausted`](crate::Certainty::BudgetExhausted).
//! Hot search loops use a [`BudgetGauge`] so the per-node overhead is one
//! counter increment plus a strided clock read.
//!
//! An unlimited budget ([`Budget::unlimited`]) performs no clock reads and
//! never trips, so budget-aware code paths are bit-identical to the
//! pre-budget behavior when no limit is configured.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source measured as a [`Duration`] since an arbitrary
/// origin. Implemented by [`SystemClock`] for production and [`MockClock`]
/// for deterministic tests.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Current time since the clock's origin.
    fn now(&self) -> Duration;
}

/// Real wall-clock time via [`Instant`].
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is the moment of construction.
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A manually-driven clock for deterministic timeout tests.
///
/// Optionally advances itself by a fixed `tick` on every [`Clock::now`]
/// call, which models "time passes while the solver searches" without any
/// real sleeping: a search loop that polls the clock every N nodes will
/// deterministically expire after `deadline / tick` polls.
#[derive(Debug, Default)]
pub struct MockClock {
    nanos: AtomicU64,
    tick_nanos: u64,
}

impl MockClock {
    /// A mock clock frozen at zero; advance it explicitly with
    /// [`MockClock::advance`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A mock clock that advances by `tick` every time it is read.
    pub fn ticking(tick: Duration) -> Self {
        MockClock {
            nanos: AtomicU64::new(0),
            tick_nanos: tick.as_nanos() as u64,
        }
    }

    /// Moves the clock forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

impl Clock for MockClock {
    fn now(&self) -> Duration {
        let t = self.nanos.fetch_add(self.tick_nanos, Ordering::Relaxed);
        Duration::from_nanos(t)
    }
}

/// Cooperative cancellation token shared between a controller and one or
/// more running solves. Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; running solves return their incumbent at the
    /// next budget check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A work budget for one solve: wall-clock deadline, node/iteration limit,
/// and cooperative cancellation.
///
/// The default ([`Budget::unlimited`]) has no limits and is checked for
/// free. Deadlines are absolute instants on the budget's [`Clock`], so a
/// per-unit budget derived from a layout-wide budget shares the same clock
/// and the same final deadline.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    clock: Option<Arc<dyn Clock>>,
    deadline: Option<Duration>,
    node_limit: Option<u64>,
    cancel: Option<CancelToken>,
}

impl Budget {
    /// No limits: solves run to completion exactly as if budgets did not
    /// exist.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget expiring `limit` of real wall-clock time from now.
    pub fn with_deadline(limit: Duration) -> Self {
        Self::with_deadline_on(Arc::new(SystemClock::new()), limit)
    }

    /// A budget with no limits of its own that carries `clock`, so
    /// children derived via [`Budget::narrowed`] measure their deadlines
    /// on it (e.g. a per-unit limit under no layout-wide limit, driven by
    /// a [`MockClock`] in tests).
    pub fn on_clock(clock: Arc<dyn Clock>) -> Self {
        Budget {
            clock: Some(clock),
            deadline: None,
            node_limit: None,
            cancel: None,
        }
    }

    /// A budget expiring `limit` after `clock`'s current time.
    pub fn with_deadline_on(clock: Arc<dyn Clock>, limit: Duration) -> Self {
        let deadline = clock.now() + limit;
        Budget {
            clock: Some(clock),
            deadline: Some(deadline),
            node_limit: None,
            cancel: None,
        }
    }

    /// Adds a search-node / iteration limit.
    pub fn and_node_limit(mut self, nodes: u64) -> Self {
        self.node_limit = Some(nodes);
        self
    }

    /// Adds a cooperative cancellation token.
    pub fn and_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The node / iteration limit, if any.
    pub fn node_limit(&self) -> Option<u64> {
        self.node_limit
    }

    /// Whether this budget can never trip.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.node_limit.is_none() && self.cancel.is_none()
    }

    /// Whether the deadline has passed or cancellation was requested.
    ///
    /// Reads the clock, so hot loops should go through a [`BudgetGauge`]
    /// rather than calling this per node.
    pub fn exhausted(&self) -> bool {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return true;
            }
        }
        match (&self.clock, self.deadline) {
            (Some(clock), Some(deadline)) => clock.now() >= deadline,
            _ => false,
        }
    }

    /// Time left until the deadline (`None` when there is no deadline).
    /// Returns `Duration::ZERO` once expired.
    pub fn remaining(&self) -> Option<Duration> {
        match (&self.clock, self.deadline) {
            (Some(clock), Some(deadline)) => Some(deadline.saturating_sub(clock.now())),
            _ => None,
        }
    }

    /// A child budget on the same clock and cancellation token whose
    /// deadline is the sooner of this budget's deadline and `limit` from
    /// now, and whose node limit is the smaller of the two.
    pub fn narrowed(&self, limit: Option<Duration>, node_limit: Option<u64>) -> Budget {
        let clock = match (&self.clock, limit) {
            (Some(c), _) => Some(Arc::clone(c)),
            (None, Some(_)) => Some(Arc::new(SystemClock::new()) as Arc<dyn Clock>),
            (None, None) => None,
        };
        let child_deadline = match (&clock, limit) {
            (Some(c), Some(l)) => Some(c.now() + l),
            _ => None,
        };
        let deadline = match (self.deadline, child_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let node_limit = match (self.node_limit, node_limit) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Budget {
            clock,
            deadline,
            node_limit,
            cancel: self.cancel.clone(),
        }
    }
}

/// Number of [`BudgetGauge::tick`] calls between clock reads. Node-limit
/// and cancellation checks are cheap and happen on the same stride.
const GAUGE_STRIDE: u64 = 256;

/// Strided budget checker for hot search loops.
///
/// Call [`tick`](BudgetGauge::tick) once per search node; it returns `true`
/// once the budget is exhausted (and keeps returning `true`). For an
/// unlimited budget the cost is one branch and one increment, and the clock
/// is never read — guaranteeing identical search behavior to unbudgeted
/// code.
#[derive(Debug)]
pub struct BudgetGauge<'a> {
    budget: &'a Budget,
    active: bool,
    ticks: u64,
    tripped: bool,
}

impl<'a> BudgetGauge<'a> {
    /// A gauge over `budget` with the tick counter at zero.
    pub fn new(budget: &'a Budget) -> Self {
        BudgetGauge {
            budget,
            active: !budget.is_unlimited(),
            ticks: 0,
            tripped: false,
        }
    }

    /// Records one unit of work; returns `true` if the budget is exhausted.
    #[inline]
    pub fn tick(&mut self) -> bool {
        if !self.active {
            return false;
        }
        if self.tripped {
            return true;
        }
        self.ticks += 1;
        if let Some(limit) = self.budget.node_limit {
            if self.ticks > limit {
                self.tripped = true;
                return true;
            }
        }
        if self.ticks.is_multiple_of(GAUGE_STRIDE) && self.budget.exhausted() {
            self.tripped = true;
            return true;
        }
        false
    }

    /// Whether the budget tripped at some point.
    pub fn is_exhausted(&self) -> bool {
        self.tripped
    }

    /// Units of work recorded so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.exhausted());
        assert_eq!(b.remaining(), None);
        let mut g = BudgetGauge::new(&b);
        for _ in 0..10_000 {
            assert!(!g.tick());
        }
        // The gauge short-circuits: no ticks are even counted.
        assert_eq!(g.ticks(), 0);
        assert!(!g.is_exhausted());
    }

    #[test]
    fn node_limit_trips_exactly() {
        let b = Budget::unlimited().and_node_limit(5);
        let mut g = BudgetGauge::new(&b);
        for _ in 0..5 {
            assert!(!g.tick());
        }
        assert!(g.tick());
        assert!(g.is_exhausted());
        assert!(g.tick(), "stays tripped");
    }

    #[test]
    fn mock_clock_deadline_expires_deterministically() {
        let clock = Arc::new(MockClock::ticking(Duration::from_micros(1)));
        let b = Budget::with_deadline_on(clock, Duration::from_micros(3));
        // with_deadline_on read the clock once (t=0 -> deadline 3µs, clock
        // now at 1µs). Each exhausted() call reads once more.
        assert!(!b.exhausted()); // t=1µs
        assert!(!b.exhausted()); // t=2µs
        assert!(b.exhausted()); // t=3µs
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn manual_mock_clock_advance() {
        let clock = Arc::new(MockClock::new());
        let b =
            Budget::with_deadline_on(Arc::clone(&clock) as Arc<dyn Clock>, Duration::from_secs(1));
        assert!(!b.exhausted());
        clock.advance(Duration::from_secs(2));
        assert!(b.exhausted());
    }

    #[test]
    fn cancel_token_trips_budget() {
        let token = CancelToken::new();
        let b = Budget::unlimited().and_cancel(token.clone());
        assert!(!b.is_unlimited());
        assert!(!b.exhausted());
        token.cancel();
        assert!(b.exhausted());
    }

    #[test]
    fn gauge_polls_clock_on_stride() {
        let clock = Arc::new(MockClock::ticking(Duration::from_millis(1)));
        let b = Budget::with_deadline_on(clock, Duration::from_millis(2));
        let mut g = BudgetGauge::new(&b);
        // with_deadline_on consumed the t=0 read (deadline 2ms, clock at
        // 1ms). The first stride boundary (tick 256) reads 1ms < 2ms; the
        // second (tick 512) reads 2ms and trips.
        let mut tripped_at = None;
        for i in 1..=3 * GAUGE_STRIDE {
            if g.tick() {
                tripped_at = Some(i);
                break;
            }
        }
        assert_eq!(tripped_at, Some(2 * GAUGE_STRIDE));
    }

    #[test]
    fn narrowed_takes_tighter_limits() {
        let clock = Arc::new(MockClock::new());
        let parent = Budget::with_deadline_on(
            Arc::clone(&clock) as Arc<dyn Clock>,
            Duration::from_secs(10),
        )
        .and_node_limit(1000);
        let child = parent.narrowed(Some(Duration::from_secs(1)), Some(50));
        assert_eq!(child.node_limit(), Some(50));
        clock.advance(Duration::from_secs(2));
        assert!(child.exhausted(), "child deadline is the sooner one");
        assert!(!parent.exhausted());

        // Narrowing an unlimited budget with no limits stays unlimited.
        assert!(Budget::unlimited().narrowed(None, None).is_unlimited());
    }
}
