#!/usr/bin/env bash
# Persistent-library smoke test: the store-backed flywheel end to end,
# including the kill -9 torn-append state.
#
# 1. Train a tiny model; record the serial oracle digest with a plain
#    `mpld adaptive --json` run (no store).
# 2. Cold store-backed run: same circuit through `--store-dir` — must be
#    bit-identical to the oracle and must populate the store.
# 3. Tear the store file to the on-disk state a mid-append SIGKILL
#    leaves (whole records + a torn half-line, no trailing newline),
#    then flip a bit inside a surviving record.
# 4. `mpld library verify` must detect the corruption (exit 1, typed),
#    `mpld library compact` must reclaim it, verify must then pass.
# 5. Warm store-backed run over the degraded-then-compacted store: the
#    digest must still equal the oracle bit-for-bit and the run must be
#    served from the store (zero fresh tail solves).
#
# Usage: scripts/library_smoke.sh [model-path]
# Knobs: MPLD_BIN (default target/release/mpld)
set -euo pipefail

BIN=${MPLD_BIN:-target/release/mpld}
MODEL=${1:-/tmp/ci-library-model.bin}
STORE=/tmp/ci-library-store
rm -rf "$STORE"

"$BIN" train -o "$MODEL" --circuits C432 --cap 20 --epochs 2

# `--colorgnn false` routes the heuristic head's units to the certified
# ILP/EC tail — the part of a run the store persists — so the warm run
# has solves to reuse.
"$BIN" adaptive C499 --model "$MODEL" --seed 7 --threads 1 \
  --colorgnn false --json true > /tmp/ci-library-oracle.json
cat /tmp/ci-library-oracle.json

echo "== cold store-backed run =="
"$BIN" adaptive C499 --model "$MODEL" --seed 7 --colorgnn false \
  --store-dir "$STORE" --json true > /tmp/ci-library-cold.json

STORE_FILE=$(ls "$STORE"/library-*.jsonl)
test -s "$STORE_FILE"
"$BIN" library stats --store-dir "$STORE"
"$BIN" library verify --store-dir "$STORE"

# The kill: tear the newest store file to the torn-append SIGKILL
# signature, then flip one bit inside a surviving solve record.
python3 - "$STORE_FILE" <<'EOF'
import sys
path = sys.argv[1]
lines = open(path).read().splitlines()
solves = [i for i, l in enumerate(lines) if l.startswith('{"t":"s"')]
assert len(solves) >= 3, f"need >=3 solve records to tear, got {len(solves)}"
# Torn tail: keep everything but the final line whole, then half of the
# final line with no trailing newline.
torn = "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
# Bit flip: corrupt a byte in the middle of the first whole solve record.
buf = bytearray(torn.encode())
target = torn.index(lines[solves[0]]) + len(lines[solves[0]]) // 2
buf[target] ^= 0x20
open(path, "wb").write(bytes(buf))
print(f"tore {path} and flipped a bit at offset {target}")
EOF

echo "== verify must detect the bit flip (exit 1) =="
set +e
"$BIN" library verify --store-dir "$STORE"
rc=$?
set -e
test "$rc" -eq 1 || { echo "verify exit $rc, wanted 1" >&2; exit 1; }

echo "== compact reclaims, verify passes =="
"$BIN" library compact --store-dir "$STORE"
"$BIN" library verify --store-dir "$STORE"

echo "== warm store-backed run over the healed store =="
"$BIN" adaptive C499 --model "$MODEL" --seed 7 --colorgnn false \
  --store-dir "$STORE" --json true > /tmp/ci-library-warm.json

python3 - /tmp/ci-library-oracle.json /tmp/ci-library-cold.json \
  /tmp/ci-library-warm.json <<'EOF'
import json, sys
oracle, cold, warm = (json.load(open(p)) for p in sys.argv[1:4])
for run, who in ((cold, "cold"), (warm, "warm")):
    assert run["cost"] == oracle["cost"], (
        f"{who}: cost {run['cost']} != oracle {oracle['cost']}")
    for engine in ("matching", "colorgnn", "ec", "ilp"):
        assert run["usage"][engine] == oracle["usage"][engine], (
            f"{who}: {engine} usage {run['usage'][engine]} "
            f"!= oracle {oracle['usage'][engine]}")
# Exactly two records were deliberately destroyed (the torn final
# append and the bit-flipped line); the warm run may re-solve those two
# units and nothing else.
fresh = warm["usage"]["ilp"] + warm["usage"]["ec"] - warm["usage"]["memo_hits"]
assert fresh <= 2, f"warm run re-solved {fresh} tail units (expected <=2)"
print(f"store-backed digests match the oracle; warm run re-solved only "
      f"the {fresh} destroyed records")
EOF

rm -rf "$STORE"
echo "library smoke passed: cold populate, kill -9 tear + bit flip detected,"
echo "compacted clean, warm run bit-identical and served from the store"
