//! In-process end-to-end test of the decomposition server: a warm
//! shared engine behind a real TCP listener, driven by raw
//! `TcpStream` clients. Covers the streaming protocol, cross-request
//! cache reuse, admission control (429), and graceful drain.

use mpld::{prepare, train_framework, Engine, OfflineConfig, RunSummary, TrainingData};
use mpld_graph::DecomposeParams;
use mpld_layout::circuit_by_name;
use mpld_server::{serve, ServerConfig};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One server shared by every test in this file (spawned once, reaped
/// with the process): its address and shutdown flag.
struct TestServer {
    addr: std::net::SocketAddr,
    #[allow(dead_code)]
    shutdown: Arc<AtomicBool>,
}

/// A quickly trained engine (and its training cap, for reference).
fn tiny_engine() -> (Arc<Engine>, usize) {
    let params = DecomposeParams::tpl();
    let layout = circuit_by_name("C432").expect("exists").generate();
    let prep = prepare(&layout, &params);
    let mut data = TrainingData::default();
    data.add_layout_capped(&prep, &params, 8);
    let mut cfg = OfflineConfig::default();
    cfg.rgcn.epochs = 1;
    cfg.colorgnn.epochs = 1;
    cfg.library = mpld_matching::LibraryConfig {
        max_parent_size: 4,
        max_splits: 1,
        max_nodes: 5,
        stitches: false,
    };
    (
        Arc::new(Engine::new(train_framework(&data, &params, &cfg))),
        8,
    )
}

fn server() -> &'static TestServer {
    static SERVER: OnceLock<TestServer> = OnceLock::new();
    SERVER.get_or_init(|| {
        let (engine, _) = tiny_engine();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            let cfg = ServerConfig {
                workers: 2,
                queue_depth: 4,
                read_timeout: Duration::from_secs(5),
            };
            serve(engine, listener, &cfg, &flag).expect("serve");
        });
        TestServer { addr, shutdown }
    })
}

fn request(addr: std::net::SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read");
    out
}

fn post_decompose(addr: std::net::SocketAddr, body: &str) -> String {
    request(
        addr,
        &format!(
            "POST /decompose HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// The final `done` line of a streamed decomposition response.
fn done_line(response: &str) -> &str {
    response
        .lines()
        .find(|l| l.starts_with("{\"event\":\"done\""))
        .unwrap_or_else(|| panic!("no done event in response:\n{response}"))
}

#[test]
fn healthz_answers_ok() {
    let s = server();
    let r = request(s.addr, "GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(r.starts_with("HTTP/1.1 200 OK"), "{r}");
    assert!(r.contains("\"status\":\"ok\""), "{r}");
}

#[test]
fn unknown_route_is_404_and_bad_body_is_400() {
    let s = server();
    let r = request(s.addr, "GET /nope HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(r.starts_with("HTTP/1.1 404"), "{r}");
    let r = post_decompose(s.addr, "{}");
    assert!(r.starts_with("HTTP/1.1 400"), "{r}");
    let r = post_decompose(s.addr, r#"{"circuit":"NOT_A_CIRCUIT"}"#);
    assert!(r.starts_with("HTTP/1.1 404"), "{r}");
}

#[test]
fn repeated_requests_share_the_warm_engine() {
    let s = server();
    let body = r#"{"circuit":"C432","seed":7}"#;

    let first = post_decompose(s.addr, body);
    assert!(first.starts_with("HTTP/1.1 200 OK"), "{first}");
    assert!(first.contains("application/x-ndjson"), "{first}");
    assert!(first.contains("{\"event\":\"routed\""), "{first}");
    let a = RunSummary::parse(done_line(&first)).expect("summary parses");

    let second = post_decompose(s.addr, body);
    let b = RunSummary::parse(done_line(&second)).expect("summary parses");

    // Identical request, identical digest…
    assert_eq!(a.layout, "C432");
    assert_eq!((a.conflicts, a.stitches), (b.conflicts, b.stitches));
    assert_eq!(
        (a.matching, a.colorgnn, a.ec, a.ilp),
        (b.matching, b.colorgnn, b.ec, b.ilp)
    );
    assert_eq!(a.seed, Some(7));
    // …and the repeat was served from the cross-request routing memo.
    assert!(
        b.routing_memo_hits > 0,
        "second request must hit the shared routing memo: {b:?}"
    );
    assert_eq!(b.units_inferred, 0, "{b:?}");

    // The stats route reflects the shared-cache traffic.
    let stats = request(s.addr, "GET /stats HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(stats.contains("\"routing\":{\"hits\":"), "{stats}");
}

#[test]
fn deadline_requests_stream_incumbents_not_errors() {
    let s = server();
    let r = post_decompose(s.addr, r#"{"circuit":"C432","seed":7,"time_limit_ms":0}"#);
    assert!(r.starts_with("HTTP/1.1 200 OK"), "{r}");
    let summary = RunSummary::parse(done_line(&r)).expect("summary parses");
    // Every unit still resolved; budget pressure shows up as certainty
    // accounting, never as an error event.
    assert_eq!(
        summary.certified + summary.heuristic + summary.budget_exhausted + summary.quarantined,
        summary.units
    );
    assert!(!r.contains("{\"event\":\"error\""), "{r}");
}

#[test]
fn saturated_queue_rejects_with_429_and_recovers() {
    // A private single-worker server so saturating it cannot interfere
    // with the shared instance used by the other tests.
    let (engine, _) = tiny_engine();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let handle = std::thread::spawn(move || {
        let cfg = ServerConfig {
            workers: 1,
            queue_depth: 1,
            read_timeout: Duration::from_secs(2),
        };
        serve(engine, listener, &cfg, &flag)
    });

    // Wedge the worker and the queue slot with connections that never
    // send a request line (released by the server's read timeout).
    let held: Vec<TcpStream> = (0..2)
        .map(|_| {
            let c = TcpStream::connect(addr).expect("connect");
            std::thread::sleep(Duration::from_millis(100));
            c
        })
        .collect();
    // With the pool and backlog full, a new connection is turned away
    // immediately. Retry briefly in case a held slot had not yet been
    // dequeued when we connected.
    let mut saw_429 = false;
    for _ in 0..20 {
        let mut c = TcpStream::connect(addr).expect("connect");
        c.set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        c.write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n")
            .expect("send");
        let mut out = String::new();
        let _ = c.read_to_string(&mut out);
        if out.starts_with("HTTP/1.1 429") {
            assert!(out.contains("queue is full"), "{out}");
            saw_429 = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    drop(held);
    assert!(saw_429, "saturation never produced a 429");
    // After the held connections time out, service recovers.
    let mut ok = false;
    for _ in 0..60 {
        let mut c = TcpStream::connect(addr).expect("connect");
        c.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        c.write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n")
            .expect("send");
        let mut out = String::new();
        let _ = c.read_to_string(&mut out);
        if out.starts_with("HTTP/1.1 200") {
            ok = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    assert!(ok, "server did not recover after saturation");
    shutdown.store(true, Ordering::SeqCst);
    assert!(handle.join().expect("no panic").is_ok());
}

#[test]
fn graceful_drain_joins_workers() {
    // A private server instance so the shared one keeps running for the
    // other tests.
    let (engine, _) = tiny_engine();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let handle = std::thread::spawn(move || {
        let cfg = ServerConfig {
            workers: 1,
            queue_depth: 1,
            read_timeout: Duration::from_secs(1),
        };
        serve(engine, listener, &cfg, &flag)
    });
    std::thread::sleep(Duration::from_millis(100));
    shutdown.store(true, Ordering::SeqCst);
    let joined = handle.join().expect("no panic");
    assert!(joined.is_ok());
}
