//! Subcommand implementations.

use crate::args::{parse, Parsed};
use mpld::{
    audit_boundary_units, layout_stats, prepare, prepare_tiled, prepare_tiled_file, run_pipeline,
    AdaptiveFramework, BudgetPolicy, Checkpoint, CheckpointHeader, Engine, JournalWriter,
    OfflineConfig, Precision, Recovery, RunSummary, Session, TiledPrepared, TiledProgress,
    TiledRunSummary, TilingConfig, TrainingData,
};
use mpld_ec::EcDecomposer;
use mpld_graph::{DecomposeParams, Decomposer, MpldError};
use mpld_ilp::encode::BipDecomposer;
use mpld_ilp::IlpDecomposer;
use mpld_layout::{
    circuit_by_name, generate_layout_streaming, iscas_suite, read_layout, write_layout,
    GeneratorParams, Layout, LayoutWriter, ReadLimits,
};
use mpld_sdp::SdpDecomposer;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::time::Duration;

/// CLI failure: either a usage/environment problem (exit code 2) or a
/// typed solver error surfaced from the decomposition stack (exit code 1).
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments, unreadable files, unknown engines, ...
    Usage(String),
    /// A typed [`MpldError`] from the decomposition layers.
    Solver(MpldError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => f.write_str(m),
            CliError::Solver(e) => write!(f, "{e}"),
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Usage(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> Self {
        CliError::Usage(m.to_string())
    }
}

impl From<MpldError> for CliError {
    fn from(e: MpldError) -> Self {
        CliError::Solver(e)
    }
}

/// Parses a human-friendly duration: `250ms`, `1.5s`, or a bare number of
/// seconds (`30`). Used by `--time-limit` / `--unit-time-limit`.
fn parse_duration(s: &str) -> Result<Duration, String> {
    let (num, scale) = if let Some(n) = s.strip_suffix("ms") {
        (n, 1e-3)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1e-6)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1.0)
    } else {
        (s, 1.0)
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("cannot parse duration {s:?} (try 250ms, 1.5s, or 30)"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("duration {s:?} must be a non-negative number"));
    }
    Ok(Duration::from_secs_f64(v * scale))
}

fn option_duration(parsed: &Parsed, name: &str) -> Result<Option<Duration>, String> {
    parsed
        .option(name)
        .map(|v| parse_duration(v).map_err(|e| format!("--{name}: {e}")))
        .transpose()
}

const USAGE: &str = "\
usage: mpld <command> [args]

commands:
  list                               list the benchmark circuits
  generate <circuit> [-o file]       write a benchmark layout (text format)
  gen --rects <n> --out <file>       stream a chip-scale synthetic layout
                                     of ~n rectangles to a file without
                                     holding it in memory (reproducible)
      --seed <n>  --d <nm>           generator seed (default 1) and
                                     coloring distance (default 100)
      --name <s>                     layout name (default \"chip\")
  stats <layout> [--exact true]      population statistics (exact adds ILP)
  decompose <layout> [options]       single-engine decomposition
      --engine ilp|ilp-bb|sdp|ec     engine (default ilp-bb)
      --k <masks>  --alpha <w>       parameters (default 3, 0.1)
      -o <file>                      write per-feature mask assignment
  train [options]                    offline training, save the framework
      --circuits C499,C880,...       training circuits (default: 4 smalls)
      --cap <n> --epochs <n>         limits (default 150, 12)
      -o <file>                      model output (default model.bin)
  adaptive <layout> --model <file>   adaptive decomposition with a model
      --threads <n>                  ILP/EC tail worker threads (default:
                                     MPLD_THREADS env or the machine's
                                     available parallelism)
      --time-limit <dur>             wall-clock budget for the whole run
                                     (250ms, 1.5s, or bare seconds); on
                                     exhaustion the best incumbent per
                                     unit is kept, never an error
      --unit-time-limit <dur>        per-unit solver budget; exact solves
                                     that expire fall back to the next
                                     cheapest engine's incumbent
      --seed <n>                     reseed the ColorGNN restart RNG
                                     (echoed in the run summary); same
                                     seed => same results
      --precision f32|f16|int8       routing-inference precision (default:
                                     MPLD_PRECISION env or f32). f16/int8
                                     run the quantized weight planes;
                                     scores too close to a routing
                                     threshold are transparently
                                     re-inferred at f32, so decisions
                                     match the f32 run
      --colorgnn false               disable the ColorGNN heuristic head:
                                     its units route to the certified
                                     ILP/EC tail instead (slower, exact,
                                     and journaled under --checkpoint)
      --checkpoint <file>            append-only JSONL journal of the
                                     ILP/EC-tail solves; a journal left by
                                     a killed run is audited and resumed
                                     instead of re-solved
      --json true                    print a single-line JSON run summary
                                     instead of the human-readable report
                                     (same object the server's final
                                     \"done\" event carries)
      --store-dir <dir>              persistent graph-library store: the
                                     library and audit-clean ILP/EC-tail
                                     solves are loaded from (and appended
                                     back to) a model-fingerprint-keyed
                                     file, so repeat runs skip the tail;
                                     corrupted or stale records re-solve
      --store-max-entries <n>        cap on stored solve records
      --store-max-bytes <n>          cap on the store file size
      --cache-cap <n>                cap on each in-memory cross-request
                                     cache (entries; arbitrary eviction)
      --tiled true                   memory-bounded tiled preprocessing:
                                     layout files are streamed from disk
                                     and windowed into overlapping tiles
                                     (O(tile) geometry working set) with
                                     halo-exact boundary conflicts; costs
                                     and colorings are bit-identical to
                                     the non-tiled run (runs through the
                                     service engine, seed default 0xBEEF)
      --tile-span <nm>               tile side length (default 48*d)
      --halo <nm>                    halo width (default d; clamped to
                                     at least d, the soundness minimum)
  serve --model <file> [options]     long-lived decomposition service: one
                                     warm engine shared by all requests
                                     (HTTP/NDJSON; see crates/server docs)
      --addr <host:port>             bind address (default 127.0.0.1:7878)
      --workers <n>                  request worker threads (default 2)
      --queue-depth <n>              accepted connections allowed to wait;
                                     beyond this new requests get 429
      --precision f32|f16|int8       routing-inference precision
      --colorgnn false               disable the ColorGNN head (see
                                     adaptive); tail solves are journaled
                                     under --journal-dir
      --journal-dir <dir>            per-job JSONL journals: a killed
                                     server restarted over the same dir
                                     resumes re-submitted jobs instead of
                                     re-solving them
      --max-body-bytes <n>           request body cap (default 2 MiB)
      --max-line-bytes <n>           upload line-length cap (default 4096)
      --max-rects <n>                upload rect-count cap (default 200k)
      --tiled true                   tiled preprocessing for all requests:
                                     per-tile NDJSON progress events, a
                                     boundary_audit event per solve, tile
                                     counters in /stats, and a tiled
                                     section in run summaries; costs stay
                                     bit-identical to the default path
      --tile-span <nm> --halo <nm>   tiling knobs (as adaptive --tiled)
      --store-dir <dir>              persistent store (as adaptive): a
                                     restarted server warm-loads the
                                     library and previous tail solves and
                                     appends new ones (write-behind);
                                     counters in /stats under \"store\"
      --store-max-entries <n>        cap on stored solve records
      --store-max-bytes <n>          cap on the store file size
      --cache-cap <n>                cap on each in-memory cross-request
                                     cache (entries; arbitrary eviction),
                                     high-water marks in /stats
  library <action> --store-dir <dir> inspect or maintain a persistent
                                     store directory; actions:
      stats                          per-file entries, buckets, model key,
                                     bytes (--json for machine output)
      verify                         full audit re-check of every stored
                                     coloring; exit 1 if anything is
                                     corrupt, audit-stale, or orphaned
      compact                        dedup superseded/orphaned/corrupt
                                     records, rewrite-and-swap in place
  submit <layout> [options]          submit a job to a running mpld-server
                                     and stream its NDJSON events; retries
                                     429/disconnects with exponential
                                     backoff + jitter and reattaches to
                                     the same job id after a drop
      --addr <host:port>             server address (default 127.0.0.1:7878)
      --seed <n> --time-limit <dur>  forwarded to the server
      --job-id <id>                  stable job id ([A-Za-z0-9._-], <=64);
                                     defaults to an id derived from the
                                     request, making re-submits idempotent
      --retries <n>                  connection attempts (default 8)
      --connect-timeout <dur>        per-attempt connect timeout (def. 2s)
      --read-timeout <dur>           max silence between events (def. 30s)
      --backoff <dur>                initial retry backoff (default 100ms)
      --json true                    print only the final done line (the
                                     run-summary JSON) on stdout
  render <layout> -o out.svg         render to SVG
      --engine ilp|ilp-bb|sdp|ec     color by a decomposition (optional)

<layout> is a benchmark circuit name (see 'mpld list') or a path to a
layout file in the text interchange format.";

/// Dispatches the parsed command line.
pub fn dispatch(argv: &[String]) -> Result<(), CliError> {
    let parsed = parse(argv)?;
    match parsed.positional(0) {
        None | Some("help") | Some("--help") => {
            println!("{USAGE}");
            Ok(())
        }
        Some("list") => cmd_list(),
        Some("generate") => cmd_generate(&parsed),
        Some("gen") => cmd_gen(&parsed),
        Some("stats") => cmd_stats(&parsed),
        Some("decompose") => cmd_decompose(&parsed),
        Some("train") => cmd_train(&parsed),
        Some("adaptive") => cmd_adaptive(&parsed),
        Some("serve") => cmd_serve(&parsed),
        Some("library") => cmd_library(&parsed),
        Some("submit") => cmd_submit(&parsed),
        Some("render") => cmd_render(&parsed),
        Some(other) => Err(CliError::Usage(format!(
            "unknown command {other:?}\n{USAGE}"
        ))),
    }
}

fn load_layout(arg: &str) -> Result<Layout, CliError> {
    if let Some(c) = circuit_by_name(arg) {
        return Ok(c.generate());
    }
    let file = File::open(arg).map_err(|e| format!("cannot open {arg}: {e}"))?;
    // Malformed layout files surface as typed parse errors (exit code 1,
    // with the offending line number), not as usage errors.
    read_layout(BufReader::new(file)).map_err(|e| CliError::Solver(MpldError::from(e)))
}

fn params_from(parsed: &Parsed) -> Result<DecomposeParams, String> {
    let k: u8 = parsed.option_or("k", 3)?;
    let alpha: f64 = parsed.option_or("alpha", 0.1)?;
    if !(2..=8).contains(&k) {
        return Err("--k must be between 2 and 8".into());
    }
    Ok(DecomposeParams { k, alpha })
}

fn cmd_list() -> Result<(), CliError> {
    println!(
        "{:<10} {:>6} {:>10} {:>7}",
        "circuit", "d(nm)", "~features", "group"
    );
    for c in iscas_suite() {
        println!(
            "{:<10} {:>6} {:>10} {:>7}",
            c.name,
            c.d,
            c.approx_features(),
            if c.large { "large" } else { "small" }
        );
    }
    Ok(())
}

fn cmd_generate(parsed: &Parsed) -> Result<(), CliError> {
    let name = parsed
        .positional(1)
        .ok_or("generate: missing circuit name")?;
    let layout = load_layout(name)?;
    match parsed.option("o") {
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            write_layout(&layout, BufWriter::new(file)).map_err(|e| e.to_string())?;
            println!("wrote {} features to {path}", layout.features.len());
        }
        None => {
            write_layout(&layout, std::io::stdout().lock()).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// Streams a reproducible chip-scale synthetic layout to disk: the
/// generator and the writer are both incremental, so memory stays O(band)
/// regardless of `--rects`.
fn cmd_gen(parsed: &Parsed) -> Result<(), CliError> {
    let rects: u64 = parsed
        .option("rects")
        .ok_or("gen: missing --rects <n>")?
        .parse()
        .map_err(|_| "gen: cannot parse --rects".to_string())?;
    if rects == 0 {
        return Err("gen: --rects must be positive".into());
    }
    let out = parsed.option("out").ok_or("gen: missing --out <file>")?;
    let seed: u64 = parsed.option_or("seed", 1)?;
    let d: i64 = parsed.option_or("d", 100)?;
    if d <= 0 {
        return Err("gen: --d must be positive".into());
    }
    let name = parsed.option("name").unwrap_or("chip");

    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let mut writer = LayoutWriter::new(BufWriter::new(file), name, d)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    let gen_params = GeneratorParams::sized(rects, seed);
    let mut written_rects = 0u64;
    let mut io_err: Option<std::io::Error> = None;
    let features = generate_layout_streaming(d, &gen_params, |f| {
        if let Err(e) = writer.feature(&f) {
            io_err = Some(e);
            return false;
        }
        written_rects += f.rects().len() as u64;
        written_rects < rects
    });
    if let Some(e) = io_err {
        return Err(format!("cannot write {out}: {e}").into());
    }
    writer
        .finish()
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    if written_rects < rects {
        return Err(format!(
            "gen: generator exhausted at {written_rects} of {rects} rects \
             (sizing underestimated; please report)"
        )
        .into());
    }
    println!("wrote {features} features ({written_rects} rects, d = {d} nm, seed {seed}) to {out}");
    Ok(())
}

fn cmd_stats(parsed: &Parsed) -> Result<(), CliError> {
    let arg = parsed.positional(1).ok_or("stats: missing layout")?;
    let exact: bool = parsed.option_or("exact", false)?;
    let params = params_from(parsed)?;
    let layout = load_layout(arg)?;
    let prep = prepare(&layout, &params);
    println!(
        "layout {}: {} features, d = {} nm",
        layout.name,
        layout.features.len(),
        layout.d
    );
    println!(
        "conflict graph: {} edges; {} features hidden by simplification",
        prep.graph.conflict_edges().len(),
        prep.simplified.hidden_nodes().len()
    );
    let sizes: Vec<usize> = prep.units.iter().map(|u| u.hetero.num_nodes()).collect();
    let stitchy = prep
        .units
        .iter()
        .filter(|u| u.hetero.has_stitches())
        .count();
    println!(
        "{} unit graphs (max {} nodes, {} with stitch candidates)",
        prep.units.len(),
        sizes.iter().max().copied().unwrap_or(0),
        stitchy
    );
    if exact {
        let s = layout_stats(&prep, &params);
        println!(
            "exact: |nsc-G| = {}, |ns-G| = {} ({:.1}% stitch-free optima)",
            s.no_stitch_candidates,
            s.no_stitch_optimal,
            100.0 * s.no_stitch_optimal as f64 / s.graphs.max(1) as f64
        );
    }
    Ok(())
}

fn cmd_decompose(parsed: &Parsed) -> Result<(), CliError> {
    let arg = parsed.positional(1).ok_or("decompose: missing layout")?;
    let params = params_from(parsed)?;
    let layout = load_layout(arg)?;
    let prep = prepare(&layout, &params);
    let engine_name = parsed.option("engine").unwrap_or("ilp-bb");
    let engine: Box<dyn Decomposer> = match engine_name {
        "ilp" => Box::new(BipDecomposer::new()),
        "ilp-bb" => Box::new(IlpDecomposer::new()),
        "sdp" => Box::new(SdpDecomposer::new()),
        "ec" => Box::new(EcDecomposer::new()),
        other => return Err(format!("unknown engine {other:?} (ilp|ilp-bb|sdp|ec)").into()),
    };
    let result = run_pipeline(&prep, engine.as_ref(), &params);
    println!(
        "{} on {}: {} (objective {:.1}) in {:?}",
        engine.name(),
        layout.name,
        result.cost,
        result.cost.value(params.alpha),
        result.decompose_time
    );
    if let Some(path) = parsed.option("o") {
        write_masks(path, &result.decomposition.feature_colors)?;
        println!("wrote mask assignment to {path}");
    }
    Ok(())
}

fn write_masks(path: &str, colors: &[u8]) -> Result<(), String> {
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# feature_id mask").map_err(|e| e.to_string())?;
    for (f, &m) in colors.iter().enumerate() {
        writeln!(w, "{f} {m}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn cmd_train(parsed: &Parsed) -> Result<(), CliError> {
    let params = params_from(parsed)?;
    let names = parsed.option("circuits").unwrap_or("C499,C880,C1355,C1908");
    let cap: usize = parsed.option_or("cap", 150)?;
    let epochs: usize = parsed.option_or("epochs", 12)?;
    let out = parsed.option("o").unwrap_or("model.bin");

    let mut data = TrainingData::default();
    for name in names.split(',') {
        let layout = load_layout(name.trim())?;
        let prep = prepare(&layout, &params);
        eprintln!(
            "labeling {} ({} units, cap {cap})...",
            layout.name,
            prep.units.len()
        );
        data.add_layout_capped(&prep, &params, cap);
    }
    let mut cfg = OfflineConfig::default();
    cfg.rgcn.epochs = epochs;
    eprintln!(
        "training on {} labeled units ({} deduped from identical twins)...",
        data.units.len(),
        data.deduped
    );
    let (fw, report) = mpld::train_framework_with_report(&data, &params, &cfg);
    eprintln!(
        "final losses: selector {:.6}, redundancy {:.6}, colorgnn {:.6}",
        report.selector_loss, report.redundancy_loss, report.colorgnn_loss
    );
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    fw.save(BufWriter::new(file)).map_err(|e| e.to_string())?;
    println!(
        "saved framework (library {} graphs) to {out}",
        fw.library.len()
    );
    Ok(())
}

fn precision_from(parsed: &Parsed) -> Result<Precision, CliError> {
    match parsed.option("precision") {
        Some(v) => Precision::parse(v)
            .ok_or_else(|| format!("cannot parse --precision {v} (expected f32|f16|int8)").into()),
        None => Ok(Precision::from_env()),
    }
}

fn load_model(
    model: &str,
    params: &DecomposeParams,
    precision: Precision,
) -> Result<AdaptiveFramework, CliError> {
    let file = File::open(model).map_err(|e| format!("cannot open {model}: {e}"))?;
    let mut fw = AdaptiveFramework::load(BufReader::new(file), params, &OfflineConfig::default())
        .map_err(|e| format!("cannot load {model}: {e}"))?;
    fw.precision = precision;
    Ok(fw)
}

fn store_caps_from(parsed: &Parsed) -> Result<mpld_store::StoreCaps, CliError> {
    let max_entries = parsed
        .option("store-max-entries")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("cannot parse --store-max-entries {v}"))
        })
        .transpose()?;
    let max_bytes = parsed
        .option("store-max-bytes")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("cannot parse --store-max-bytes {v}"))
        })
        .transpose()?;
    Ok(mpld_store::StoreCaps {
        max_entries,
        max_bytes,
    })
}

fn cache_cap_from(parsed: &Parsed) -> Result<Option<usize>, CliError> {
    Ok(parsed
        .option("cache-cap")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("cannot parse --cache-cap {v}"))
        })
        .transpose()?)
}

/// Builds a store-backed engine from a model file: the graph library and
/// previous audit-clean tail solves are loaded from the
/// model-fingerprint-keyed store file, and fresh solves append back.
fn load_store_engine(
    model: &str,
    params: &DecomposeParams,
    precision: Precision,
    use_colorgnn: Option<bool>,
    store_dir: &str,
    parsed: &Parsed,
) -> Result<(Engine, mpld_store::LoadReport), CliError> {
    let bytes = std::fs::read(model).map_err(|e| format!("cannot open {model}: {e}"))?;
    let caps = store_caps_from(parsed)?;
    let cache_cap = cache_cap_from(parsed)?;
    mpld::engine_with_store_configured(
        &bytes,
        params,
        &OfflineConfig::default(),
        std::path::Path::new(store_dir),
        caps,
        cache_cap,
        |fw| {
            fw.precision = precision;
            if let Some(flag) = use_colorgnn {
                fw.use_colorgnn = flag;
            }
        },
    )
    .map_err(|e| format!("cannot open store {store_dir}: {e}").into())
}

/// One human-readable line about what the store contributed to a run.
fn print_store_line(engine: &Engine) {
    if let Some(s) = engine.stats().store {
        println!(
            "store: {} solves loaded ({} ms), library {}, {} appended{}{}",
            s.loaded_solves,
            s.load_ms,
            if s.lib_loaded { "loaded" } else { "rebuilt" },
            s.appended,
            if s.rekeyed {
                ", re-keyed stale file"
            } else {
                ""
            },
            if s.skipped_corrupt + s.skipped_audit > 0 {
                format!(
                    ", skipped {} corrupt / {} audit-stale",
                    s.skipped_corrupt, s.skipped_audit
                )
            } else {
                String::new()
            },
        );
    }
}

/// `mpld library <stats|verify|compact> --store-dir <dir>`: persistent
/// store inspection and maintenance. `verify` exits 1 (typed solver
/// error) when any stored record is corrupt, audit-stale, or orphaned;
/// usage problems exit 2 as everywhere else.
fn cmd_library(parsed: &Parsed) -> Result<(), CliError> {
    let action = parsed
        .positional(1)
        .ok_or("library: missing action (stats|verify|compact)")?;
    let dir = parsed
        .option("store-dir")
        .ok_or("library: missing --store-dir <dir>")?;
    let dir = std::path::Path::new(dir);
    let json: bool = parsed.option_or("json", false)?;
    match action {
        "stats" => {
            let files = mpld_store::scan_dir(dir)
                .map_err(|e| format!("cannot scan {}: {e}", dir.display()))?;
            if json {
                let items: Vec<String> = files.iter().map(library_stats_json).collect();
                println!("[{}]", items.join(","));
                return Ok(());
            }
            if files.is_empty() {
                println!("no store files under {}", dir.display());
                return Ok(());
            }
            for f in &files {
                match &f.header {
                    Some(h) => println!(
                        "{}: model {:016x}  k {}  alpha {}  dim {}  lib {}\n  \
                         {} solves in {} buckets, {} library entries ({}), {} bytes{}",
                        f.path.display(),
                        h.model_digest,
                        h.k,
                        h.alpha,
                        h.dim,
                        h.library,
                        f.solves,
                        f.buckets,
                        f.lib_entries,
                        if f.lib_complete {
                            "complete"
                        } else {
                            "incomplete"
                        },
                        f.bytes,
                        if f.corrupt > 0 {
                            format!(", {} corrupt lines", f.corrupt)
                        } else {
                            String::new()
                        },
                    ),
                    None => println!(
                        "{}: unreadable header ({} bytes)",
                        f.path.display(),
                        f.bytes
                    ),
                }
            }
            Ok(())
        }
        "verify" => {
            let reports = mpld_store::verify_dir(dir)
                .map_err(|e| format!("cannot scan {}: {e}", dir.display()))?;
            let mut dirty = 0usize;
            for r in &reports {
                let status = if r.is_clean() { "clean" } else { "DEGRADED" };
                println!(
                    "{}: {} — {} records ({} clean, {} corrupt, {} audit-failed, \
                     {} orphaned{}{})",
                    r.path.display(),
                    status,
                    r.records,
                    r.clean,
                    r.corrupt,
                    r.audit_failed,
                    r.orphaned,
                    if r.torn_tail { ", torn tail" } else { "" },
                    if r.header_ok { "" } else { ", bad header" },
                );
                if !r.is_clean() {
                    dirty += 1;
                }
            }
            if reports.is_empty() {
                println!("no store files under {}", dir.display());
            }
            if dirty > 0 {
                // Degraded stores are a data problem, not a usage one.
                return Err(CliError::Solver(MpldError::Io(format!(
                    "store verification failed: {dirty} of {} files degraded (run \
                     'mpld library compact' to reclaim)",
                    reports.len()
                ))));
            }
            Ok(())
        }
        "compact" => {
            let results = mpld_store::compact_dir(dir)
                .map_err(|e| format!("compact {}: {e}", dir.display()))?;
            if results.is_empty() {
                println!("no store files under {}", dir.display());
            }
            for (path, r) in &results {
                println!(
                    "{}: kept {} solves + {} library entries; dropped {} superseded, \
                     {} corrupt, {} audit-failed, {} orphaned; {} -> {} bytes",
                    path.display(),
                    r.kept_solves,
                    r.kept_lib,
                    r.dropped_superseded,
                    r.dropped_corrupt,
                    r.dropped_audit,
                    r.dropped_orphaned,
                    r.bytes_before,
                    r.bytes_after,
                );
            }
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "library: unknown action {other:?} (expected stats|verify|compact)"
        ))),
    }
}

fn library_stats_json(f: &mpld_store::FileStats) -> String {
    let header = match &f.header {
        Some(h) => format!(
            "{{\"model\":\"{:016x}\",\"k\":{},\"alpha\":{},\"dim\":{},\"library\":\"{}\"}}",
            h.model_digest, h.k, h.alpha, h.dim, h.library
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\"path\":{:?},\"header\":{header},\"solves\":{},\"buckets\":{},\
         \"lib_entries\":{},\"lib_complete\":{},\"corrupt\":{},\"bytes\":{}}}",
        f.path.display().to_string(),
        f.solves,
        f.buckets,
        f.lib_entries,
        f.lib_complete,
        f.corrupt,
        f.bytes
    )
}

fn cmd_adaptive(parsed: &Parsed) -> Result<(), CliError> {
    let arg = parsed.positional(1).ok_or("adaptive: missing layout")?;
    let model = parsed
        .option("model")
        .ok_or("adaptive: missing --model <file>")?;
    let params = params_from(parsed)?;
    let threads: usize = parsed.option_or("threads", mpld::default_threads())?;
    if threads == 0 {
        return Err("--threads must be positive".into());
    }
    let policy = BudgetPolicy {
        total: option_duration(parsed, "time-limit")?,
        per_unit: option_duration(parsed, "unit-time-limit")?,
        ..BudgetPolicy::unlimited()
    };
    let seed: Option<u64> = parsed
        .option("seed")
        .map(|v| v.parse().map_err(|_| format!("cannot parse --seed {v}")))
        .transpose()?;
    let json: bool = parsed.option_or("json", false)?;
    let precision = precision_from(parsed)?;
    if parsed.option_or("tiled", false)? {
        return cmd_adaptive_tiled(
            parsed, arg, model, &params, threads, policy, seed, json, precision,
        );
    }
    if let Some(store_dir) = parsed.option("store-dir") {
        return cmd_adaptive_store(
            parsed, arg, model, &params, policy, seed, json, precision, store_dir,
        );
    }
    let mut fw = load_model(model, &params, precision)?;
    fw.use_colorgnn = parsed.option_or("colorgnn", fw.use_colorgnn)?;
    if let Some(s) = seed {
        fw.colorgnn.reseed(s);
    }
    let layout = load_layout(arg)?;
    let prep = prepare(&layout, &params);

    // Crash-safe checkpointing: resume from (and keep appending to) an
    // on-disk journal of the ILP/EC-tail solves.
    let mut resume = None;
    let mut journal = None;
    if let Some(path) = parsed.option("checkpoint") {
        let p = std::path::Path::new(path);
        if let Some(cp) = Checkpoint::load(p)? {
            if !cp.matches(&layout.name, params.k, params.alpha, prep.units.len()) {
                return Err(format!(
                    "--checkpoint {path}: journal belongs to a different run \
                     (layout {:?}, k {}, {} units)",
                    cp.header().layout,
                    cp.header().k,
                    cp.header().units
                )
                .into());
            }
            resume = Some(cp);
        }
        let header = CheckpointHeader {
            layout: layout.name.clone(),
            k: params.k,
            alpha: params.alpha,
            units: prep.units.len(),
        };
        journal = Some(JournalWriter::append(p, &header)?);
    }
    let recovery = Recovery {
        resume: resume.as_ref(),
        journal: journal.as_ref(),
    };
    // Deterministic fault injection for chaos testing: only compiled in
    // with `--features failpoints`, only active when MPLD_FAILPOINTS is
    // set (e.g. MPLD_FAILPOINTS="seed=7,rate=0.02"), and armed only for
    // the fault-isolated online pipeline — the offline library rebuild
    // inside model loading requires the exact engine to run fault-free.
    #[cfg(feature = "failpoints")]
    if let Some((fp_seed, rate)) = mpld_graph::failpoints::configure_from_env() {
        eprintln!("failpoints: enabled (seed={fp_seed}, rate={rate})");
        // Injected panics are expected and quarantined; swap the default
        // hook's multi-line backtrace for a one-line note (quarantined
        // units are listed in the run summary anyway).
        std::panic::set_hook(Box::new(|info| eprintln!("chaos: {info}")));
    }
    let r = fw.decompose_prepared_parallel_recoverable(&prep, threads, &policy, recovery)?;
    if json {
        // One machine-readable line — the same RunSummary object the
        // server's final "done" event carries, for digest comparisons.
        println!(
            "{}",
            RunSummary::from_result(&layout.name, &r, params.alpha, threads, seed).to_json()
        );
        for (unit, e) in &r.quarantines {
            eprintln!("  unit {unit}: {e}");
        }
        if let Some(path) = parsed.option("o") {
            write_masks(path, &r.pipeline.decomposition.feature_colors)?;
        }
        return Ok(());
    }
    println!(
        "adaptive on {}: {} (objective {:.1}) in {:?} ({threads} threads{})",
        layout.name,
        r.pipeline.cost,
        r.pipeline.cost.value(params.alpha),
        r.pipeline.decompose_time,
        match seed {
            Some(s) => format!(", seed {s}"),
            None => String::new(),
        }
    );
    println!(
        "usage: matching {}  ColorGNN {}  EC {}  ILP {}  (fallbacks {}, memo hits {})",
        r.usage.matching,
        r.usage.colorgnn,
        r.usage.ec,
        r.usage.ilp,
        r.usage.colorgnn_fallbacks,
        r.memo_hits
    );
    if precision != Precision::F32 {
        let inf = &r.inference;
        println!(
            "precision: {} (kernel {}; {} quantized, {} pinned f32, {} f32 fallbacks, {} batches)",
            inf.precision,
            inf.kernel_quant,
            inf.quantized_units,
            inf.pinned_f32,
            inf.f32_fallbacks,
            inf.batches_planned
        );
    }
    if !policy.is_unlimited() {
        println!(
            "budget: {} certified  {} heuristic  {} budget-exhausted  {} fallbacks",
            r.budget.certified,
            r.budget.heuristic,
            r.budget.budget_exhausted,
            r.budget.budget_fallbacks
        );
    }
    if r.resumed_units > 0 {
        println!(
            "checkpoint: resumed {} of {} units from the journal",
            r.resumed_units,
            prep.units.len()
        );
    }
    if r.budget.quarantined > 0 || r.budget.audit_rejections > 0 {
        println!(
            "faults: {} quarantined  {} audit rejections",
            r.budget.quarantined, r.budget.audit_rejections
        );
        for (unit, e) in &r.quarantines {
            eprintln!("  unit {unit}: {e}");
        }
    }
    if let Some(path) = parsed.option("o") {
        write_masks(path, &r.pipeline.decomposition.feature_colors)?;
        println!("wrote mask assignment to {path}");
    }
    Ok(())
}

/// `adaptive --store-dir <dir>`: store-backed decomposition through the
/// serving engine. The graph library and previous audit-clean tail
/// solves load from the persistent store (keyed by the model's weights
/// digest and the layout params), and certified fresh solves append
/// back, so a second run of the same workload re-solves almost nothing.
#[allow(clippy::too_many_arguments)] // plain plumbing from cmd_adaptive's parsed options
fn cmd_adaptive_store(
    parsed: &Parsed,
    arg: &str,
    model: &str,
    params: &DecomposeParams,
    policy: BudgetPolicy,
    seed: Option<u64>,
    json: bool,
    precision: Precision,
    store_dir: &str,
) -> Result<(), CliError> {
    let colorgnn: Option<bool> = parsed
        .option("colorgnn")
        .map(|v| {
            v.parse::<bool>()
                .map_err(|_| format!("cannot parse --colorgnn {v}"))
        })
        .transpose()?;
    let (engine, _report) =
        load_store_engine(model, params, precision, colorgnn, store_dir, parsed)?;
    let layout = load_layout(arg)?;
    let prep = prepare(&layout, params);

    // Same crash-safe checkpoint protocol as the in-memory path.
    let mut resume = None;
    let mut journal = None;
    if let Some(path) = parsed.option("checkpoint") {
        let p = std::path::Path::new(path);
        if let Some(cp) = Checkpoint::load(p)? {
            if !cp.matches(&layout.name, params.k, params.alpha, prep.units.len()) {
                return Err(format!(
                    "--checkpoint {path}: journal belongs to a different run \
                     (layout {:?}, k {}, {} units)",
                    cp.header().layout,
                    cp.header().k,
                    cp.header().units
                )
                .into());
            }
            resume = Some(cp);
        }
        let header = CheckpointHeader {
            layout: layout.name.clone(),
            k: params.k,
            alpha: params.alpha,
            units: prep.units.len(),
        };
        journal = Some(JournalWriter::append(p, &header)?);
    }

    let mut session = Session::with_policy(seed.unwrap_or(mpld_server::DEFAULT_SEED), policy);
    session.recovery = Recovery {
        resume: resume.as_ref(),
        journal: journal.as_ref(),
    };
    let r = engine.decompose(&prep, &mut session)?;
    if json {
        println!(
            "{}",
            RunSummary::from_result(&layout.name, &r, params.alpha, 1, seed).to_json()
        );
        for (unit, e) in &r.quarantines {
            eprintln!("  unit {unit}: {e}");
        }
        if let Some(path) = parsed.option("o") {
            write_masks(path, &r.pipeline.decomposition.feature_colors)?;
        }
        return Ok(());
    }
    println!(
        "adaptive (store) on {}: {} (objective {:.1}) in {:?} (seed {})",
        layout.name,
        r.pipeline.cost,
        r.pipeline.cost.value(params.alpha),
        r.pipeline.decompose_time,
        session.seed()
    );
    println!(
        "usage: matching {}  ColorGNN {}  EC {}  ILP {}  (fallbacks {}, memo hits {})",
        r.usage.matching,
        r.usage.colorgnn,
        r.usage.ec,
        r.usage.ilp,
        r.usage.colorgnn_fallbacks,
        r.memo_hits
    );
    print_store_line(&engine);
    if r.resumed_units > 0 {
        println!(
            "checkpoint: resumed {} of {} units from the journal",
            r.resumed_units,
            prep.units.len()
        );
    }
    if r.budget.quarantined > 0 || r.budget.audit_rejections > 0 {
        println!(
            "faults: {} quarantined  {} audit rejections",
            r.budget.quarantined, r.budget.audit_rejections
        );
        for (unit, e) in &r.quarantines {
            eprintln!("  unit {unit}: {e}");
        }
    }
    if let Some(path) = parsed.option("o") {
        write_masks(path, &r.pipeline.decomposition.feature_colors)?;
        println!("wrote mask assignment to {path}");
    }
    Ok(())
}

/// `adaptive --tiled true`: memory-bounded tiled preprocessing followed
/// by the standard service-engine solve. Layout files are streamed from
/// disk (geometry spilled to an unlinked temp file, O(tile) working
/// set); benchmark circuits are tiled in memory. The reconstructed
/// prepared layout is bit-identical to the monolithic one, so costs and
/// colorings match the non-tiled run exactly; boundary units are
/// re-audited against the independent Eq. 1 cost check afterwards.
#[allow(clippy::too_many_arguments)] // plain plumbing from cmd_adaptive's parsed options
fn cmd_adaptive_tiled(
    parsed: &Parsed,
    arg: &str,
    model: &str,
    params: &DecomposeParams,
    threads: usize,
    policy: BudgetPolicy,
    seed: Option<u64>,
    json: bool,
    precision: Precision,
) -> Result<(), CliError> {
    let config = TilingConfig {
        tile_span: parsed.option_or("tile-span", 0)?,
        halo: parsed.option_or("halo", 0)?,
        threads,
    };
    let mut fw = load_model(model, params, precision)?;
    fw.use_colorgnn = parsed.option_or("colorgnn", fw.use_colorgnn)?;

    // Quiet in JSON mode; in human mode narrate the tiling milestones on
    // stderr (per-tile events are skipped — there can be thousands).
    let progress = move |p: TiledProgress| {
        if json {
            return;
        }
        match p {
            TiledProgress::Scanned { features, rects } => {
                eprintln!("tiled: scanned {features} features ({rects} rects)");
            }
            TiledProgress::Grid {
                tiles_x,
                tiles_y,
                tile_span,
                halo,
            } => {
                eprintln!("tiled: {tiles_x}x{tiles_y} tiles (span {tile_span} nm, halo {halo} nm)");
            }
            TiledProgress::Tile { .. } => {}
            TiledProgress::Simplified {
                edges,
                units,
                boundary_units,
            } => {
                eprintln!(
                    "tiled: {edges} conflict edges, {units} units ({boundary_units} on tile boundaries)"
                );
            }
        }
    };
    let tp: TiledPrepared = if let Some(c) = circuit_by_name(arg) {
        prepare_tiled(&c.generate(), params, &config, &progress)
    } else {
        prepare_tiled_file(
            std::path::Path::new(arg),
            &ReadLimits::unlimited(),
            params,
            &config,
            &progress,
        )?
    };
    let prep = &tp.prep;
    let stats = tp.stats;

    // Same crash-safe checkpoint protocol as the non-tiled path — the
    // prepared layout is identical, so journals are interchangeable.
    let mut resume = None;
    let mut journal = None;
    if let Some(path) = parsed.option("checkpoint") {
        let p = std::path::Path::new(path);
        if let Some(cp) = Checkpoint::load(p)? {
            if !cp.matches(&prep.name, params.k, params.alpha, prep.units.len()) {
                return Err(format!(
                    "--checkpoint {path}: journal belongs to a different run \
                     (layout {:?}, k {}, {} units)",
                    cp.header().layout,
                    cp.header().k,
                    cp.header().units
                )
                .into());
            }
            resume = Some(cp);
        }
        let header = CheckpointHeader {
            layout: prep.name.clone(),
            k: params.k,
            alpha: params.alpha,
            units: prep.units.len(),
        };
        journal = Some(JournalWriter::append(p, &header)?);
    }

    #[cfg(feature = "failpoints")]
    if let Some((fp_seed, rate)) = mpld_graph::failpoints::configure_from_env() {
        eprintln!("failpoints: enabled (seed={fp_seed}, rate={rate})");
        std::panic::set_hook(Box::new(|info| eprintln!("chaos: {info}")));
    }

    let engine = Engine::new(fw);
    let mut session = Session::with_policy(seed.unwrap_or(mpld_server::DEFAULT_SEED), policy);
    session.recovery = Recovery {
        resume: resume.as_ref(),
        journal: journal.as_ref(),
    };
    let r = engine.decompose(prep, &mut session)?;
    let (audited, audit_clean) = audit_boundary_units(prep, &r, &tp.boundary_units, params.k);
    if !audit_clean {
        eprintln!(
            "tiled: WARNING boundary cost audit disagreed on at least one of {audited} units"
        );
    }

    if json {
        let mut summary = RunSummary::from_result(&prep.name, &r, params.alpha, threads, seed);
        summary.tiled = Some(TiledRunSummary {
            tiles: stats.tiles_x * stats.tiles_y,
            boundary_resolves: stats.boundary_resolves,
        });
        println!("{}", summary.to_json());
        for (unit, e) in &r.quarantines {
            eprintln!("  unit {unit}: {e}");
        }
        if let Some(path) = parsed.option("o") {
            write_masks(path, &r.pipeline.decomposition.feature_colors)?;
        }
        return Ok(());
    }
    println!(
        "adaptive (tiled) on {}: {} (objective {:.1}) in {:?} ({threads} threads, seed {})",
        prep.name,
        r.pipeline.cost,
        r.pipeline.cost.value(params.alpha),
        r.pipeline.decompose_time,
        session.seed()
    );
    println!(
        "tiling: {}x{} tiles (span {} nm, halo {} nm), {} of {} features replicated",
        stats.tiles_x,
        stats.tiles_y,
        stats.tile_span,
        stats.halo,
        stats.replicated_features,
        stats.features
    );
    println!(
        "boundary: {} of {} conflict edges cross tiles; {} boundary re-solves, \
         cost audit {} on {} units",
        stats.boundary_edges,
        stats.edges,
        stats.boundary_resolves,
        if audit_clean { "clean" } else { "FAILED" },
        audited
    );
    println!(
        "usage: matching {}  ColorGNN {}  EC {}  ILP {}  (fallbacks {}, memo hits {})",
        r.usage.matching,
        r.usage.colorgnn,
        r.usage.ec,
        r.usage.ilp,
        r.usage.colorgnn_fallbacks,
        r.memo_hits
    );
    if r.resumed_units > 0 {
        println!(
            "checkpoint: resumed {} of {} units from the journal",
            r.resumed_units,
            prep.units.len()
        );
    }
    if r.budget.quarantined > 0 || r.budget.audit_rejections > 0 {
        println!(
            "faults: {} quarantined  {} audit rejections",
            r.budget.quarantined, r.budget.audit_rejections
        );
        for (unit, e) in &r.quarantines {
            eprintln!("  unit {unit}: {e}");
        }
    }
    if let Some(path) = parsed.option("o") {
        write_masks(path, &r.pipeline.decomposition.feature_colors)?;
        println!("wrote mask assignment to {path}");
    }
    Ok(())
}

/// Long-lived decomposition service: loads the model and compiles the
/// frozen inference heads once, then serves requests from a worker pool
/// sharing one warm [`Engine`] until SIGTERM/SIGINT, when it drains and
/// exits cleanly.
fn cmd_serve(parsed: &Parsed) -> Result<(), CliError> {
    use mpld_server::{install_signal_handlers, serve, ServerConfig};

    let model = parsed
        .option("model")
        .ok_or("serve: missing --model <file>")?;
    let params = params_from(parsed)?;
    let defaults = ServerConfig::default();
    let addr = parsed.option("addr").unwrap_or("127.0.0.1:7878");
    let cfg = ServerConfig {
        workers: parsed.option_or("workers", defaults.workers)?,
        queue_depth: parsed.option_or("queue-depth", defaults.queue_depth)?,
        journal_dir: parsed.option("journal-dir").map(std::path::PathBuf::from),
        http: mpld_server::HttpLimits {
            max_body_bytes: parsed.option_or("max-body-bytes", defaults.http.max_body_bytes)?,
            ..defaults.http
        },
        upload: mpld_layout::ReadLimits {
            max_line_bytes: parsed.option_or("max-line-bytes", defaults.upload.max_line_bytes)?,
            max_rects: parsed.option_or("max-rects", defaults.upload.max_rects)?,
            ..defaults.upload
        },
        tiling: if parsed.option_or("tiled", false)? {
            Some(TilingConfig {
                tile_span: parsed.option_or("tile-span", 0)?,
                halo: parsed.option_or("halo", 0)?,
                // Request workers are the parallelism; tiles run serial.
                threads: 1,
            })
        } else {
            None
        },
        ..defaults
    };
    if cfg.workers == 0 {
        return Err("--workers must be positive".into());
    }
    let precision = precision_from(parsed)?;
    let colorgnn: Option<bool> = parsed
        .option("colorgnn")
        .map(|v| {
            v.parse::<bool>()
                .map_err(|_| format!("cannot parse --colorgnn {v}"))
        })
        .transpose()?;
    // With --store-dir the engine is store-backed: the graph library and
    // previous audit-clean tail solves load from disk in milliseconds,
    // and certified fresh solves append back (write-behind) so a warm
    // restart serves the same workload with near-zero tail solves.
    let engine = if let Some(store_dir) = parsed.option("store-dir") {
        let (engine, report) =
            load_store_engine(model, &params, precision, colorgnn, store_dir, parsed)?;
        eprintln!(
            "store: {} solves preloaded, library {} ({} ms{})",
            report.solves,
            if report.lib_complete {
                "loaded"
            } else {
                "rebuilt"
            },
            report.load_ms,
            if report.rekeyed { ", re-keyed" } else { "" },
        );
        std::sync::Arc::new(engine)
    } else {
        let mut fw = load_model(model, &params, precision)?;
        if let Some(flag) = colorgnn {
            fw.use_colorgnn = flag;
        }
        std::sync::Arc::new(Engine::with_cache_cap(fw, cache_cap_from(parsed)?))
    };
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    // Readiness line on stdout (flushed) so wrappers can wait for it.
    println!(
        "mpld-server listening on {local} ({} workers, queue {})",
        cfg.workers, cfg.queue_depth
    );
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    let shutdown = install_signal_handlers();
    serve(engine, listener, &cfg, shutdown).map_err(|e| format!("serve: {e}"))?;
    println!("mpld-server: drained, exiting");
    Ok(())
}

/// Submits a decomposition job to a running `mpld-server` and streams
/// its NDJSON events, retrying 429s and dropped connections with
/// exponential backoff + jitter and reattaching to the same job id
/// after a disconnect (idempotent resume; see the server crate's client
/// module docs).
fn cmd_submit(parsed: &Parsed) -> Result<(), CliError> {
    use mpld_server::{submit, ClientConfig, ClientError, SubmitBody, SubmitRequest};

    let target = parsed
        .positional(1)
        .ok_or("submit: missing <layout> (circuit name or file)")?;
    let defaults = ClientConfig::default();
    let cfg = ClientConfig {
        addr: parsed
            .option("addr")
            .unwrap_or("127.0.0.1:7878")
            .to_string(),
        connect_timeout: option_duration(parsed, "connect-timeout")?
            .unwrap_or(defaults.connect_timeout),
        read_timeout: option_duration(parsed, "read-timeout")?.unwrap_or(defaults.read_timeout),
        max_attempts: parsed.option_or("retries", defaults.max_attempts)?,
        backoff_base: option_duration(parsed, "backoff")?.unwrap_or(defaults.backoff_base),
        backoff_cap: defaults.backoff_cap,
        jitter_seed: parsed.option_or("jitter-seed", defaults.jitter_seed)?,
    };
    let seed = parsed
        .option("seed")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("cannot parse --seed {v}"))
        })
        .transpose()?;
    let time_limit_ms = option_duration(parsed, "time-limit")?.map(|d| d.as_millis() as u64);
    let job_id = parsed.option("job-id").map(str::to_string);
    let json = parsed.option("json") == Some("true");

    // A known circuit name is submitted by name (the server generates
    // it); anything else is read as a layout file and uploaded raw.
    let body = if circuit_by_name(target).is_some() {
        SubmitBody::Circuit(target.to_string())
    } else {
        let text = std::fs::read_to_string(target)
            .map_err(|e| format!("submit: cannot read layout {target:?}: {e}"))?;
        SubmitBody::Upload(text)
    };
    let req = SubmitRequest {
        body,
        seed,
        time_limit_ms,
        job_id,
    };

    match submit(&cfg, &req, &mut |line| {
        if !json {
            println!("{line}");
        }
    }) {
        Ok(o) => {
            if json {
                println!("{}", o.done_line);
            }
            if o.attempts > 1 || o.reattaches > 0 || o.busy_retries > 0 {
                eprintln!(
                    "mpld submit: job {} done after {} attempts \
                     ({} reattaches, {} busy retries)",
                    o.job_id, o.attempts, o.reattaches, o.busy_retries
                );
            }
            Ok(())
        }
        Err(e @ ClientError::Rejected { .. }) => Err(CliError::Usage(format!("submit: {e}"))),
        Err(e) => Err(CliError::Solver(MpldError::Infeasible {
            engine: "server",
            reason: format!("submit: {e}"),
        })),
    }
}

fn cmd_render(parsed: &Parsed) -> Result<(), CliError> {
    let arg = parsed.positional(1).ok_or("render: missing layout")?;
    let out = parsed.option("o").ok_or("render: missing -o <file.svg>")?;
    let params = params_from(parsed)?;
    let layout = load_layout(arg)?;
    let colors = match parsed.option("engine") {
        None => None,
        Some(name) => {
            let engine: Box<dyn Decomposer> = match name {
                "ilp" => Box::new(BipDecomposer::new()),
                "ilp-bb" => Box::new(IlpDecomposer::new()),
                "sdp" => Box::new(SdpDecomposer::new()),
                "ec" => Box::new(EcDecomposer::new()),
                other => return Err(format!("unknown engine {other:?}").into()),
            };
            let prep = prepare(&layout, &params);
            let r = run_pipeline(&prep, engine.as_ref(), &params);
            println!("decomposed with {}: {}", engine.name(), r.cost);
            Some(r.decomposition.feature_colors)
        }
    };
    let svg = mpld_viz::render_svg(&layout, colors.as_deref(), &mpld_viz::SvgOptions::default());
    std::fs::write(out, svg).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_writes_svg() {
        let dir = std::env::temp_dir().join("mpld_cli_render");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let out = dir.join("c432.svg").to_string_lossy().to_string();
        dispatch(&[
            "render".into(),
            "C432".into(),
            "--engine".into(),
            "ec".into(),
            "-o".into(),
            out.clone(),
        ])
        .expect("render");
        let svg = std::fs::read_to_string(&out).expect("svg written");
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        let argv = vec!["frobnicate".to_string()];
        assert!(matches!(dispatch(&argv), Err(CliError::Usage(_))));
    }

    #[test]
    fn durations_parse_with_suffixes() {
        assert_eq!(parse_duration("250ms").unwrap(), Duration::from_millis(250));
        assert_eq!(parse_duration("1.5s").unwrap(), Duration::from_millis(1500));
        assert_eq!(parse_duration("30").unwrap(), Duration::from_secs(30));
        assert_eq!(parse_duration("500us").unwrap(), Duration::from_micros(500));
        assert_eq!(parse_duration("0").unwrap(), Duration::ZERO);
        assert!(parse_duration("fast").is_err());
        assert!(parse_duration("-1s").is_err());
        assert!(parse_duration("1m").is_err());
    }

    #[test]
    fn bad_time_limit_is_a_usage_error() {
        let r = dispatch(&[
            "adaptive".into(),
            "C432".into(),
            "--model".into(),
            "/nonexistent/model.bin".into(),
            "--time-limit".into(),
            "soon".into(),
        ]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn serve_requires_a_model() {
        let r = dispatch(&["serve".into()]);
        assert!(matches!(r, Err(CliError::Usage(_))));
        let r = dispatch(&[
            "serve".into(),
            "--model".into(),
            "/nonexistent/model.bin".into(),
            "--workers".into(),
            "0".into(),
        ]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn submit_usage_errors_are_typed() {
        // Missing target.
        let r = dispatch(&["submit".into()]);
        assert!(matches!(r, Err(CliError::Usage(_))));
        // Not a circuit and not a readable file.
        let r = dispatch(&[
            "submit".into(),
            "/nonexistent/layout.txt".into(),
            "--retries".into(),
            "1".into(),
        ]);
        assert!(matches!(r, Err(CliError::Usage(_))));
        // Bad duration flag.
        let r = dispatch(&[
            "submit".into(),
            "C432".into(),
            "--read-timeout".into(),
            "soon".into(),
        ]);
        assert!(matches!(r, Err(CliError::Usage(_))));
        // Unreachable server with one fast attempt: a solver-side
        // failure (exit 1), not a usage error.
        let r = dispatch(&[
            "submit".into(),
            "C432".into(),
            "--addr".into(),
            "127.0.0.1:1".into(),
            "--retries".into(),
            "1".into(),
            "--connect-timeout".into(),
            "50ms".into(),
            "--backoff".into(),
            "1ms".into(),
        ]);
        assert!(matches!(r, Err(CliError::Solver(_))));
    }

    #[test]
    fn bad_json_flag_is_a_usage_error() {
        let r = dispatch(&[
            "adaptive".into(),
            "C432".into(),
            "--model".into(),
            "/nonexistent/model.bin".into(),
            "--json".into(),
            "maybe".into(),
        ]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn list_runs() {
        assert!(dispatch(&["list".to_string()]).is_ok());
    }

    #[test]
    fn layout_round_trip_via_files() {
        let dir = std::env::temp_dir().join("mpld_cli_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let layout_path = dir.join("c432.layout").to_string_lossy().to_string();
        dispatch(&[
            "generate".into(),
            "C432".into(),
            "-o".into(),
            layout_path.clone(),
        ])
        .expect("generate");
        // Decompose the generated file and write masks.
        let masks_path = dir.join("masks.txt").to_string_lossy().to_string();
        dispatch(&[
            "decompose".into(),
            layout_path.clone(),
            "--engine".into(),
            "ec".into(),
            "-o".into(),
            masks_path.clone(),
        ])
        .expect("decompose");
        let masks = std::fs::read_to_string(&masks_path).expect("masks written");
        let lines = masks.lines().filter(|l| !l.starts_with('#')).count();
        let layout = load_layout(&layout_path).expect("parse back");
        assert_eq!(lines, layout.features.len());
    }

    #[test]
    fn stats_runs_on_circuit() {
        assert!(dispatch(&["stats".into(), "C432".into()]).is_ok());
    }

    #[test]
    fn bad_engine_rejected() {
        let r = dispatch(&[
            "decompose".into(),
            "C432".into(),
            "--engine".into(),
            "magic".into(),
        ]);
        assert!(r.is_err());
    }
}
