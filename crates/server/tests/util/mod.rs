//! Shared helpers for the server integration suites: a quickly trained
//! engine, an in-process server spawner, and raw-socket HTTP helpers.

// Each integration test binary compiles its own copy of this module and
// uses a different subset of it.
#![allow(dead_code)]

use mpld::{prepare, train_framework, Engine, OfflineConfig, TrainingData};
use mpld_graph::DecomposeParams;
use mpld_layout::circuit_by_name;
use mpld_server::{serve, ServerConfig};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A quickly trained engine. Training is fully deterministic, so two
/// calls build bit-identical engines — the property that lets a "fresh
/// process" in a restart test be simulated by a fresh engine.
/// `use_colorgnn = false` routes every unit to the journaled ILP/EC
/// tail, which the resume tests rely on.
pub fn tiny_engine(use_colorgnn: bool) -> Arc<Engine> {
    let params = DecomposeParams::tpl();
    let layout = circuit_by_name("C432").expect("exists").generate();
    let prep = prepare(&layout, &params);
    let mut data = TrainingData::default();
    data.add_layout_capped(&prep, &params, 8);
    let mut cfg = OfflineConfig::default();
    cfg.rgcn.epochs = 1;
    cfg.colorgnn.epochs = 1;
    cfg.library = mpld_matching::LibraryConfig {
        max_parent_size: 4,
        max_splits: 1,
        max_nodes: 5,
        stitches: false,
    };
    let mut fw = train_framework(&data, &params, &cfg);
    fw.use_colorgnn = use_colorgnn;
    Arc::new(Engine::new(fw))
}

/// A running in-process server and the handles to stop it.
pub struct TestServer {
    pub addr: std::net::SocketAddr,
    pub shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    /// Spawns `serve` on an ephemeral port with `cfg`.
    pub fn start(engine: Arc<Engine>, cfg: ServerConfig) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || serve(engine, listener, &cfg, &flag));
        TestServer {
            addr,
            shutdown,
            handle: Some(handle),
        }
    }

    /// Signals shutdown and joins the serve loop.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            assert!(h.join().expect("serve must not panic").is_ok());
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Sends raw bytes best-effort and returns the full response (empty on
/// connect/read failure — callers that need success assert on content).
pub fn send_raw(addr: std::net::SocketAddr, raw: &[u8]) -> String {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return String::new();
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let _ = stream.write_all(raw); // EPIPE is fine: rejection beat the write
    let _ = stream.flush();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

/// `POST /decompose` with a JSON body.
pub fn post_decompose(addr: std::net::SocketAddr, body: &str) -> String {
    send_raw(
        addr,
        format!(
            "POST /decompose HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// The final `done` line of a streamed decomposition response.
pub fn done_line(response: &str) -> &str {
    response
        .lines()
        .find(|l| l.starts_with("{\"event\":\"done\""))
        .unwrap_or_else(|| panic!("no done event in response:\n{response}"))
}

/// A unique, empty scratch directory under the system temp dir.
pub fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mpld-server-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}
