//! Criterion bench: RGCN inference throughput — per-graph versus batched
//! over the disjoint union. Supports the Fig. 9 claim that GNN operations
//! are a trivial fraction of the decomposition runtime *when batched*.

use criterion::{criterion_group, criterion_main, Criterion};
use mpld::prepare;
use mpld_gnn::RgcnClassifier;
use mpld_graph::{DecomposeParams, LayoutGraph};
use mpld_layout::circuit_by_name;

fn unit_graphs(n: usize) -> Vec<LayoutGraph> {
    let params = DecomposeParams::tpl();
    let layout = circuit_by_name("C1355").expect("known circuit").generate();
    let prep = prepare(&layout, &params);
    prep.units
        .iter()
        .take(n)
        .map(|u| u.hetero.clone())
        .collect()
}

fn bench_embedding(c: &mut Criterion) {
    let graphs = unit_graphs(64);
    let refs: Vec<&LayoutGraph> = graphs.iter().collect();
    let mut group = c.benchmark_group("rgcn_inference");

    group.bench_function("single_graph_x64", |b| {
        let model = RgcnClassifier::selector(7);
        b.iter(|| {
            let mut acc = 0f32;
            for g in &refs {
                acc += model.predict(g)[0];
            }
            acc
        })
    });

    group.bench_function("batched_x64", |b| {
        let model = RgcnClassifier::selector(7);
        b.iter(|| {
            let probs = model.predict_batch(&refs);
            probs.iter().map(|p| p[0]).sum::<f32>()
        })
    });

    group.bench_function("embeddings_batched_x64", |b| {
        let model = RgcnClassifier::selector(7);
        b.iter(|| model.embeddings_batch(&refs).len())
    });

    group.finish();
}

criterion_group!(benches, bench_embedding);
criterion_main!(benches);
