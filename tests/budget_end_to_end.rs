//! Budget-aware adaptive decomposition, end to end: anytime behavior
//! (every unit keeps a full valid coloring no matter how tight the
//! budget), bit-identical results under an unlimited policy, and
//! cooperative cancellation.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use mpld::{
    prepare, train_framework, AdaptiveFramework, BudgetPolicy, OfflineConfig, PreparedLayout,
    TrainingData,
};
use mpld_graph::{CancelToken, Certainty, Clock, DecomposeParams, MockClock};
use mpld_layout::circuit_by_name;
use proptest::prelude::*;

fn fixture() -> &'static (AdaptiveFramework, PreparedLayout) {
    static FIXTURE: OnceLock<(AdaptiveFramework, PreparedLayout)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let params = DecomposeParams::tpl();
        let layout = circuit_by_name("C432").expect("exists").generate();
        let prep = prepare(&layout, &params);
        let mut data = TrainingData::default();
        data.add_layout_capped(&prep, &params, 8);
        let mut cfg = OfflineConfig::default();
        cfg.rgcn.epochs = 1;
        cfg.colorgnn.epochs = 1;
        cfg.library = mpld_matching::LibraryConfig {
            max_parent_size: 4,
            max_splits: 1,
            max_nodes: 5,
            stitches: false,
        };
        (train_framework(&data, &params, &cfg), prep)
    })
}

/// The anytime contract: whatever the budget, every unit ends with a
/// full-coverage coloring whose values lie in `0..k` and whose summed
/// cost matches the per-unit costs.
fn assert_anytime_contract(
    fw: &AdaptiveFramework,
    prep: &PreparedLayout,
    r: &mpld::AdaptiveResult,
) {
    assert_eq!(r.unit_outcomes.len(), prep.units.len());
    assert_eq!(
        r.pipeline.decomposition.unit_subfeature_colorings.len(),
        prep.units.len()
    );
    for (u, coloring) in prep
        .units
        .iter()
        .zip(&r.pipeline.decomposition.unit_subfeature_colorings)
    {
        assert_eq!(coloring.len(), u.hetero.num_nodes(), "full coverage");
        assert!(coloring.iter().all(|&c| c < fw.params.k), "colors in 0..k");
    }
    assert!(r
        .pipeline
        .decomposition
        .feature_colors
        .iter()
        .all(|&c| c < fw.params.k));
    let b = &r.budget;
    assert_eq!(
        b.certified + b.heuristic + b.budget_exhausted + b.quarantined,
        prep.units.len(),
        "every unit has exactly one certainty"
    );
    assert_eq!(
        b.budget_fallbacks,
        r.unit_outcomes.iter().filter(|o| o.budget_fallback).count()
    );
    assert_eq!(
        b.audit_rejections,
        r.unit_outcomes.iter().filter(|o| o.audit_rejected).count()
    );
    // Every reported per-unit coloring must survive the independent
    // audit's validity checks, faults or not.
    for (u, coloring) in prep
        .units
        .iter()
        .zip(&r.pipeline.decomposition.unit_subfeature_colorings)
    {
        mpld_graph::audit_coloring(&u.hetero, coloring, fw.params.k)
            .expect("reported coloring must be audit-valid");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Budget-exhausted adaptive runs still produce full-coverage
    /// colorings in `0..k`, for a sweep of mock-clock speeds and
    /// per-unit deadlines (several of which expire almost immediately).
    #[test]
    fn budget_exhausted_runs_keep_valid_colorings(
        tick_us in 1u64..400,
        per_unit_us in 1u64..200,
        total_sel in 0u8..2,
    ) {
        let total = total_sel == 1;
        let (fw, prep) = fixture();
        fw.colorgnn.reseed(0xC432);
        let clock = Arc::new(MockClock::ticking(Duration::from_micros(tick_us)));
        let policy = BudgetPolicy {
            total: total.then(|| Duration::from_micros(per_unit_us * 4)),
            per_unit: Some(Duration::from_micros(per_unit_us)),
            cancel: None,
            clock: Some(clock as Arc<dyn Clock>),
        };
        let r = fw
            .decompose_prepared_with(prep, &policy)
            .expect("budget exhaustion is not an error");
        assert_anytime_contract(fw, prep, &r);
    }
}

#[test]
fn unlimited_policy_is_bit_identical_to_legacy_entry_point() {
    let (fw, prep) = fixture();
    let params = fw.params;
    fw.colorgnn.reseed(7);
    let legacy = fw.decompose_prepared(prep);
    fw.colorgnn.reseed(7);
    let budgeted = fw
        .decompose_prepared_with(prep, &BudgetPolicy::unlimited())
        .expect("unlimited policy cannot fail");
    assert_eq!(
        legacy.pipeline.decomposition, budgeted.pipeline.decomposition,
        "unlimited policy must be bit-identical"
    );
    assert_eq!(legacy.pipeline.cost, budgeted.pipeline.cost);
    assert_eq!(legacy.unit_engines, budgeted.unit_engines);
    assert_eq!(legacy.usage, budgeted.usage);
    assert_eq!(budgeted.budget.budget_exhausted, 0);
    assert_eq!(budgeted.budget.budget_fallbacks, 0);
    // The always-on audit layer must be invisible on an honest run.
    assert_eq!(budgeted.budget.audit_rejections, 0);
    assert_eq!(budgeted.budget.quarantined, 0);
    assert!(budgeted.quarantines.is_empty());
    assert_eq!(budgeted.resumed_units, 0);
    assert_eq!(
        legacy.pipeline.cost.value(params.alpha),
        budgeted.pipeline.cost.value(params.alpha)
    );
}

#[test]
fn cancelled_run_still_covers_every_unit() {
    let (fw, prep) = fixture();
    fw.colorgnn.reseed(11);
    let token = CancelToken::new();
    token.cancel(); // cancelled before the run even starts
    let policy = BudgetPolicy {
        total: None,
        per_unit: None,
        cancel: Some(token),
        clock: None,
    };
    let r = fw
        .decompose_prepared_with(prep, &policy)
        .expect("cancellation with incumbents is not an error");
    assert_anytime_contract(fw, prep, &r);
    // Cancellation can only downgrade certainty (searches that finish
    // within one gauge stride may still certify); every downgraded unit
    // must still carry a recorded engine.
    assert_eq!(r.unit_engines.len(), r.unit_outcomes.len());
    for (e, o) in r.unit_engines.iter().zip(&r.unit_outcomes) {
        assert_eq!(*e, o.engine);
        assert!(o.certainty != Certainty::Certified || !o.budget_fallback);
    }
}

#[test]
fn tight_budget_parallel_matches_contract_and_reports_fallbacks() {
    let (fw, prep) = fixture();
    fw.colorgnn.reseed(23);
    let clock = Arc::new(MockClock::ticking(Duration::from_micros(300)));
    let policy = BudgetPolicy {
        total: None,
        per_unit: Some(Duration::from_micros(1)),
        cancel: None,
        clock: Some(clock as Arc<dyn Clock>),
    };
    let r = fw
        .decompose_prepared_parallel_with(prep, 2, &policy)
        .expect("budget exhaustion is not an error");
    assert_anytime_contract(fw, prep, &r);
}
