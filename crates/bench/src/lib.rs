//! Shared infrastructure for the benchmark harness: suite preparation,
//! per-circuit training-data caching, K-fold splits, and table printing.
//!
//! Every table/figure of the paper's evaluation has a dedicated binary in
//! `src/bin/` (run with `cargo run --release -p mpld-bench --bin tableN`).
//! Environment knobs shared by all binaries:
//!
//! - `MPLD_CIRCUITS=n` — only the first `n` circuits (quick runs);
//! - `MPLD_EPOCHS=n` — RGCN training epochs (default 12);
//! - `MPLD_TRAIN_CAP=n` — max units per circuit used for training
//!   (default 150);
//! - `MPLD_FOLDS=n` — number of leave-2-out folds actually executed
//!   (default: all 8).

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use mpld::{prepare, OfflineConfig, PreparedLayout, TrainingData};
use mpld_graph::DecomposeParams;
use mpld_layout::{iscas_suite, Circuit};

/// The prepared benchmark suite plus cached training labels.
pub struct Bench {
    /// Decomposition parameters (TPL defaults).
    pub params: DecomposeParams,
    /// The circuits, in paper order.
    pub circuits: Vec<Circuit>,
    /// Prepared layouts, parallel to `circuits`.
    pub prepared: Vec<PreparedLayout>,
    /// Per-circuit labeled data covering *every* unit (used as test sets;
    /// training subsamples via [`Bench::merged_data`]).
    pub data: Vec<TrainingData>,
    /// Cap applied per circuit when building training sets.
    pub train_cap: usize,
}

/// Reads a `usize` environment knob.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Bench {
    /// Prepares the suite and labels training units (capped per circuit).
    pub fn load() -> Bench {
        let params = DecomposeParams::tpl();
        let limit = env_usize("MPLD_CIRCUITS", 15).clamp(1, 15);
        let train_cap = env_usize("MPLD_TRAIN_CAP", 150);
        let circuits: Vec<Circuit> = iscas_suite().into_iter().take(limit).collect();
        let prepared: Vec<PreparedLayout> = circuits
            .iter()
            .map(|c| prepare(&c.generate(), &params))
            .collect();
        let data = prepared
            .iter()
            .map(|p| {
                let mut d = TrainingData::default();
                d.add_layout(p, &params);
                d
            })
            .collect();
        Bench {
            params,
            circuits,
            prepared,
            data,
            train_cap,
        }
    }

    /// Offline config honoring the environment knobs.
    pub fn offline_config(&self) -> OfflineConfig {
        let mut cfg = OfflineConfig::default();
        cfg.rgcn.epochs = env_usize("MPLD_EPOCHS", 12);
        cfg.colorgnn.epochs = env_usize("MPLD_COLORGNN_EPOCHS", 15);
        cfg
    }

    /// Merges the cached per-circuit data of `indices` into one training
    /// dataset, subsampling each circuit to `train_cap` units while always
    /// keeping the rare classes (ILP-better units and stitch-needing
    /// units) that the classifiers must learn.
    pub fn merged_data(&self, indices: &[usize]) -> TrainingData {
        let mut out = TrainingData::default();
        for &i in indices {
            let d = &self.data[i];
            let not_redundant: std::collections::HashSet<usize> = d
                .redundancy_labels
                .iter()
                .filter(|&&(_, l)| l == 1)
                .map(|&(u, _)| u)
                .collect();
            let mut keep: Vec<usize> = Vec::new();
            let mut plain = 0usize;
            for u in 0..d.units.len() {
                let rare = d.selector_labels[u] == 0 || not_redundant.contains(&u);
                if rare || plain < self.train_cap {
                    keep.push(u);
                    if !rare {
                        plain += 1;
                    }
                }
            }
            let redundancy_of: std::collections::HashMap<usize, u8> =
                d.redundancy_labels.iter().copied().collect();
            for u in keep {
                let idx = out.units.len();
                out.units.push(d.units[u].clone());
                out.selector_labels.push(d.selector_labels[u]);
                if let Some(&l) = redundancy_of.get(&u) {
                    out.redundancy_labels.push((idx, l));
                }
                out.ilp_costs.push(d.ilp_costs[u]);
                out.ec_costs.push(d.ec_costs[u]);
                // Merged sets carry already-solved labels, so every unit
                // is its own representative here.
                out.rep_of.push(idx);
            }
        }
        out
    }

    /// Leave-2-out folds over the loaded circuits: fold `f` tests circuits
    /// `{2f, 2f+1}` and trains on the rest, as in the paper's
    /// cross-validation. Respects `MPLD_FOLDS`.
    pub fn folds(&self) -> Vec<(Vec<usize>, Vec<usize>)> {
        let n = self.circuits.len();
        let all_folds = n.div_ceil(2);
        let wanted = env_usize("MPLD_FOLDS", all_folds).clamp(1, all_folds);
        (0..wanted)
            .map(|f| {
                let test: Vec<usize> = [2 * f, 2 * f + 1].into_iter().filter(|&i| i < n).collect();
                let train: Vec<usize> = (0..n).filter(|i| !test.contains(i)).collect();
                (train, test)
            })
            .collect()
    }
}

/// Trains an adaptive framework on the given circuit indices using the
/// cached labels and the environment-configured hyperparameters.
pub fn train_fold(bench: &Bench, train_idx: &[usize]) -> mpld::AdaptiveFramework {
    let data = bench.merged_data(train_idx);
    mpld::train_framework(&data, &bench.params, &bench.offline_config())
}

/// Prints a Markdown-ish table with right-aligned columns.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(4)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

/// Formats a `Duration` in engineering style (s / ms / µs).
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Bench {
        let params = DecomposeParams::tpl();
        let circuits: Vec<Circuit> = iscas_suite().into_iter().take(2).collect();
        let prepared: Vec<PreparedLayout> = circuits
            .iter()
            .map(|c| prepare(&c.generate(), &params))
            .collect();
        let data = prepared
            .iter()
            .map(|p| {
                let mut d = TrainingData::default();
                d.add_layout_capped(p, &params, 30);
                d
            })
            .collect();
        Bench {
            params,
            circuits,
            prepared,
            data,
            train_cap: 30,
        }
    }

    #[test]
    fn folds_cover_all_circuits_once() {
        let bench = tiny();
        let folds = bench.folds();
        let mut tested: Vec<usize> = folds.iter().flat_map(|(_, t)| t.clone()).collect();
        tested.sort_unstable();
        assert_eq!(tested, (0..bench.circuits.len()).collect::<Vec<_>>());
        for (train, test) in &folds {
            for t in test {
                assert!(!train.contains(t));
            }
        }
    }

    #[test]
    fn merged_data_remaps_redundancy_indices() {
        let bench = tiny();
        let merged = bench.merged_data(&[0, 1]);
        assert_eq!(
            merged.units.len(),
            bench.data[0].units.len() + bench.data[1].units.len()
        );
        for &(i, _) in &merged.redundancy_labels {
            assert!(merged.units[i].has_stitches());
        }
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7µs");
    }
}
