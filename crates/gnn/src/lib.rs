//! Graph neural networks for adaptive layout decomposition.
//!
//! This crate implements every learned component of the paper on top of
//! the [`mpld_tensor`] autograd substrate:
//!
//! - [`GraphEncoding`] — Eq. (8) input features and per-edge-type
//!   adjacency;
//! - [`RgcnClassifier`] — the relational GCN with basis decomposition
//!   (Eq. 6–7) behind graph embedding, decomposer selection and stitch
//!   redundancy prediction;
//! - [`GcnClassifier`] — the conventional-GCN baseline of Table III
//!   (Eq. 15);
//! - [`ColorGnn`] — the pure message-passing non-stitch decomposer
//!   (Eq. 5, Algorithm 1) trained with the margin loss (Eq. 14).
//!
//! # Example
//!
//! ```
//! use mpld_graph::{Decomposer, DecomposeParams, LayoutGraph};
//! use mpld_gnn::ColorGnn;
//!
//! let g = LayoutGraph::homogeneous(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
//! let gnn = ColorGnn::new(7);
//! let d = gnn.decompose_unbounded(&g, &DecomposeParams::tpl());
//! assert_eq!(d.coloring.len(), 5);
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod colorgnn;
mod encoding;
pub(crate) mod frozen;
mod gcn;
mod rgcn;

pub use colorgnn::{ColorGnn, ColorGnnTrainConfig};
pub use encoding::{BatchEncoding, GraphEncoding, InferBatch, INPUT_ALPHA, INPUT_SCALE};
pub use frozen::{FrozenColorGnn, FrozenOutputs, FrozenRgcn};
pub use gcn::{GcnClassifier, GCN_STITCH_WEIGHT};
pub use rgcn::{Readout, RgcnClassifier, TrainConfig};
