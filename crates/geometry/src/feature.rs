use crate::Rect;

/// Identifier of a polygonal feature within a layout.
pub type FeatureId = u32;

/// A polygonal layout feature, represented as a union of axis-aligned
/// rectangles (a rectilinear decomposition of the polygon).
///
/// Routed-layer features in the benchmarks are wire-like: one rectangle or
/// a small L/T/Z-shaped union of rectangles. The MPLD graph construction
/// only needs membership and pairwise gap distance, so the rectangle
/// decomposition is a complete representation.
///
/// # Example
///
/// ```
/// use mpld_geometry::{Feature, Rect};
/// let l_shape = Feature::new(7, vec![
///     Rect::new(0, 0, 100, 20),
///     Rect::new(80, 20, 100, 120),
/// ]);
/// assert_eq!(l_shape.id(), 7);
/// assert_eq!(l_shape.bounding_box(), Rect::new(0, 0, 100, 120));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Feature {
    id: FeatureId,
    rects: Vec<Rect>,
}

impl Feature {
    /// Creates a feature from its rectangle decomposition.
    ///
    /// # Panics
    ///
    /// Panics if `rects` is empty: a feature must occupy some area.
    pub fn new(id: FeatureId, rects: Vec<Rect>) -> Self {
        assert!(
            !rects.is_empty(),
            "a feature must contain at least one rectangle"
        );
        Feature { id, rects }
    }

    /// The feature's identifier.
    pub fn id(&self) -> FeatureId {
        self.id
    }

    /// The rectangle decomposition.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Total area (assumes the decomposition is non-overlapping).
    pub fn area(&self) -> i64 {
        self.rects.iter().map(Rect::area).sum()
    }

    /// The axis-aligned bounding box of the whole feature.
    pub fn bounding_box(&self) -> Rect {
        let mut bb = self.rects[0];
        for r in &self.rects[1..] {
            bb = bb.union(r);
        }
        bb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one rectangle")]
    fn empty_feature_panics() {
        let _ = Feature::new(0, vec![]);
    }

    #[test]
    fn area_sums_rects() {
        let f = Feature::new(1, vec![Rect::new(0, 0, 10, 10), Rect::new(10, 0, 20, 5)]);
        assert_eq!(f.area(), 100 + 50);
    }

    #[test]
    fn bounding_box_spans_all_rects() {
        let f = Feature::new(1, vec![Rect::new(0, 0, 10, 10), Rect::new(30, -5, 40, 5)]);
        assert_eq!(f.bounding_box(), Rect::new(0, -5, 40, 10));
    }
}
