//! Cross-crate integration tests: the preprocessing pipeline, the four
//! decomposition engines, and the graph library must agree on the same
//! benchmark data.

use mpld::{prepare, run_pipeline, PreparedLayout};
use mpld_ec::EcDecomposer;
use mpld_gnn::RgcnClassifier;
use mpld_graph::{DecomposeParams, Decomposer};
use mpld_ilp::encode::BipDecomposer;
use mpld_ilp::IlpDecomposer;
use mpld_layout::circuit_by_name;
use mpld_matching::{GraphLibrary, LibraryConfig};
use mpld_sdp::SdpDecomposer;

fn prep(name: &str) -> PreparedLayout {
    let layout = circuit_by_name(name).expect("known circuit").generate();
    prepare(&layout, &DecomposeParams::tpl())
}

#[test]
fn every_engine_produces_valid_colorings() {
    let params = DecomposeParams::tpl();
    let p = prep("C432");
    let engines: Vec<Box<dyn Decomposer>> = vec![
        Box::new(IlpDecomposer::new()),
        Box::new(SdpDecomposer::new()),
        Box::new(EcDecomposer::new()),
    ];
    for engine in &engines {
        let r = run_pipeline(&p, engine.as_ref(), &params);
        assert_eq!(r.decomposition.feature_colors.len(), p.graph.num_nodes());
        assert!(r.decomposition.feature_colors.iter().all(|&c| c < params.k));
        for (u, coloring) in p
            .units
            .iter()
            .zip(&r.decomposition.unit_subfeature_colorings)
        {
            assert_eq!(coloring.len(), u.hetero.num_nodes());
        }
    }
}

#[test]
fn exact_engines_agree_and_heuristics_never_beat_them() {
    let params = DecomposeParams::tpl();
    let p = prep("C432");
    let bb = run_pipeline(&p, &IlpDecomposer::new(), &params);
    let bip = run_pipeline(&p, &BipDecomposer::new(), &params);
    let ec = run_pipeline(&p, &EcDecomposer::new(), &params);
    let sdp = run_pipeline(&p, &SdpDecomposer::new(), &params);
    let a = params.alpha;
    assert!(
        (bb.cost.value(a) - bip.cost.value(a)).abs() < 1e-9,
        "exact engines disagree"
    );
    assert!(ec.cost.value(a) >= bb.cost.value(a) - 1e-9);
    assert!(sdp.cost.value(a) >= bb.cost.value(a) - 1e-9);
}

#[test]
fn unit_costs_sum_to_total() {
    let params = DecomposeParams::tpl();
    let p = prep("C499");
    let r = run_pipeline(&p, &IlpDecomposer::new(), &params);
    let sum = r
        .unit_costs
        .iter()
        .fold(mpld_graph::CostBreakdown::default(), |acc, &c| {
            acc.combine(c)
        });
    assert_eq!(r.cost, sum);
}

#[test]
fn library_matches_are_exactly_optimal_on_real_units() {
    // Every library hit on real benchmark units must equal the exact
    // optimum — matching can accelerate, never degrade.
    let params = DecomposeParams::tpl();
    let p = prep("C432");
    let embedder = RgcnClassifier::selector(0xBEEF);
    let cfg = LibraryConfig::default();
    let library = GraphLibrary::build(&embedder, &cfg, &params);
    let ilp = IlpDecomposer::new();
    let mut hits = 0;
    for unit in &p.units {
        if let Some(d) = library.lookup(&embedder, &unit.hetero) {
            let opt = ilp.decompose_unbounded(&unit.hetero, &params);
            assert_eq!(
                d.cost.value(params.alpha),
                opt.cost.value(params.alpha),
                "library transfer is suboptimal on a real unit"
            );
            hits += 1;
        }
    }
    assert!(hits > 0, "the library never matched anything on C432");
}

#[test]
fn stitch_insertion_only_splits_within_components() {
    let p = prep("C880");
    for (unit, s) in p.units.iter().zip(p.simplified.units()) {
        // Subfeature count >= feature count; features map into the unit.
        assert!(unit.hetero.num_nodes() >= s.graph.num_nodes());
        assert_eq!(unit.hetero.num_features(), s.graph.num_nodes());
        // Feature-level conflict structure is preserved: merging stitch
        // edges yields at least the unit's conflict edges.
        let (parent, _) = unit.hetero.merge_stitch_edges();
        assert_eq!(parent.num_nodes(), s.graph.num_nodes());
        for &(a, b) in s.graph.conflict_edges() {
            assert!(
                parent.conflict_neighbors(a).contains(&b),
                "feature-level conflict lost by stitch insertion"
            );
        }
    }
}

#[test]
fn quadruple_patterning_costs_at_most_triple() {
    let p = prep("C499");
    let tpl = run_pipeline(&p, &IlpDecomposer::new(), &DecomposeParams::tpl());
    // Note: stitch insertion was done for TPL, but more masks can only help
    // the coloring stage.
    let qpl = run_pipeline(&p, &IlpDecomposer::new(), &DecomposeParams::qpl());
    assert!(qpl.cost.value(0.1) <= tpl.cost.value(0.1) + 1e-9);
}
