//! Tiled serving end to end: a server configured with `tiling` must
//! stream per-tile preparation events to the job that triggered the
//! preparation, re-audit boundary units on every solve, carry a tiled
//! section in run summaries, expose tile counters on `/stats` — and
//! stay digest-identical to a plain (monolithic) server over the same
//! deterministic engine weights.

mod util;

use mpld::{RunSummary, TilingConfig};
use mpld_layout::{circuit_by_name, write_layout};
use mpld_server::ServerConfig;
use std::time::Duration;
use util::{done_line, post_decompose, send_raw, tiny_engine, TestServer};

fn tiled_cfg() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_depth: 8,
        read_timeout: Duration::from_secs(5),
        // C432's d is 120 nm: a 2d tile span forces a real grid with
        // boundary units, not one tile that degenerates to monolithic.
        tiling: Some(TilingConfig {
            tile_span: 240,
            halo: 0,
            threads: 1,
        }),
        ..ServerConfig::default()
    }
}

#[test]
fn tiled_circuit_requests_stream_tile_events_and_match_the_plain_server() {
    let tiled = TestServer::start(tiny_engine(true), tiled_cfg());
    let plain = TestServer::start(
        tiny_engine(true),
        ServerConfig {
            workers: 2,
            queue_depth: 8,
            read_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    );
    let body = r#"{"circuit":"C432","seed":7}"#;

    // First request triggers the tiled preparation: its stream replays
    // the per-tile progress, then audits the boundary units.
    let first = post_decompose(tiled.addr, body);
    assert!(first.starts_with("HTTP/1.1 200 OK"), "{first}");
    assert!(first.contains("{\"event\":\"tiled_grid\""), "{first}");
    assert!(first.contains("{\"event\":\"tile\","), "{first}");
    assert!(first.contains("{\"event\":\"tiled_simplified\""), "{first}");
    assert!(
        first.contains("\"event\":\"boundary_audit\"") && first.contains("\"clean\":true"),
        "{first}"
    );
    let a = RunSummary::parse(done_line(&first)).expect("summary parses");
    let at = a.tiled.expect("tiled section present");
    assert!(at.tiles > 1, "2d tiles must form a real grid: {at:?}");

    // Bit-identical digest to the monolithic server (same weights, same
    // seed): the tiled prepared layout IS the monolithic one.
    let p = RunSummary::parse(done_line(&post_decompose(plain.addr, body))).expect("parses");
    assert!(p.tiled.is_none());
    assert_eq!(
        (a.conflicts, a.stitches, a.units),
        (p.conflicts, p.stitches, p.units)
    );
    assert_eq!(
        (a.matching, a.colorgnn, a.ec, a.ilp),
        (p.matching, p.colorgnn, p.ec, p.ilp)
    );

    // A cache hit skips the preparation replay but still audits and
    // reports the tiled section.
    let second = post_decompose(
        tiled.addr,
        r#"{"circuit":"C432","seed":7,"job_id":"warm-2"}"#,
    );
    assert!(!second.contains("{\"event\":\"tile\","), "{second}");
    assert!(second.contains("\"event\":\"boundary_audit\""), "{second}");
    let b = RunSummary::parse(done_line(&second)).expect("summary parses");
    assert_eq!(b.tiled.expect("tiled section").tiles, at.tiles);

    // /stats surfaces the tile counters.
    let stats = send_raw(tiled.addr, b"GET /stats HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(
        stats.contains("\"tiled\":{\"enabled\":true,\"preps\":1,"),
        "{stats}"
    );

    tiled.stop();
    plain.stop();
}

#[test]
fn tiled_uploads_prepare_through_the_tiler() {
    let s = TestServer::start(tiny_engine(true), tiled_cfg());
    let mut body = Vec::new();
    write_layout(
        &circuit_by_name("C499").expect("exists").generate(),
        &mut body,
    )
    .expect("serialize");
    let raw = format!(
        "POST /decompose?seed=7 HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let mut req = raw.into_bytes();
    req.extend_from_slice(&body);
    let r = send_raw(s.addr, &req);
    assert!(r.starts_with("HTTP/1.1 200 OK"), "{r}");
    assert!(r.contains("{\"event\":\"tiled_grid\""), "{r}");
    assert!(
        r.contains("\"event\":\"boundary_audit\"") && r.contains("\"clean\":true"),
        "{r}"
    );
    let summary = RunSummary::parse(done_line(&r)).expect("summary parses");
    assert!(summary.tiled.expect("tiled section").tiles > 1);
    s.stop();
}
