//! Table III — F1-score comparison of (a) the proposed RGCN and (b) the
//! conventional GCN baseline on the ILP/EC decomposer-selection task,
//! evaluated with the paper's leave-2-circuits-out cross-validation.
//!
//! Class 0 ("positive") = ILP strictly better. Labels are computed against
//! the **baseline-grade EC** (`EcDecomposer::basic`, no certified
//! enumeration) — the quality level of the paper's EC engine. Our
//! production EC is optimal on all but a couple of units (see Table IV),
//! which would make this selection task empty; see EXPERIMENTS.md.

use mpld::ConfusionMatrix;
use mpld_bench::{env_usize, print_table, Bench};
use mpld_ec::EcDecomposer;
use mpld_gnn::{GcnClassifier, RgcnClassifier, TrainConfig};
use mpld_graph::{Decomposer, LayoutGraph};

fn main() {
    let bench = Bench::load();
    let cfg = TrainConfig {
        epochs: env_usize("MPLD_EPOCHS", 12),
        ..TrainConfig::default()
    };

    // Per-circuit labels against the baseline EC.
    let basic = EcDecomposer::basic();
    let labels: Vec<Vec<u8>> = bench
        .data
        .iter()
        .map(|d| {
            d.units
                .iter()
                .zip(&d.ilp_costs)
                .map(|(g, ilp)| {
                    let ec = basic.decompose_unbounded(g, &bench.params).cost;
                    u8::from(!ilp.better_than(&ec, bench.params.alpha))
                })
                .collect()
        })
        .collect();
    let positives: usize = labels
        .iter()
        .flat_map(|l| l.iter())
        .filter(|&&l| l == 0)
        .count();
    eprintln!(
        "{positives} ILP-labeled units of {}",
        labels.iter().map(Vec::len).sum::<usize>()
    );

    let mut rgcn_cm = ConfusionMatrix::new();
    let mut gcn_cm = ConfusionMatrix::new();

    for (fold, (train_idx, test_idx)) in bench.folds().iter().enumerate() {
        // Training set: the capped subsample plus every positive unit.
        let mut graphs: Vec<&LayoutGraph> = Vec::new();
        let mut train_labels: Vec<u8> = Vec::new();
        for &ci in train_idx {
            let d = &bench.data[ci];
            let mut plain = 0usize;
            for (u, g) in d.units.iter().enumerate() {
                let l = labels[ci][u];
                if l == 0 || plain < bench.train_cap {
                    graphs.push(g);
                    train_labels.push(l);
                    if l != 0 {
                        plain += 1;
                    }
                }
            }
        }
        if graphs.is_empty() {
            continue;
        }
        let data: Vec<(&LayoutGraph, u8)> = graphs
            .iter()
            .copied()
            .zip(train_labels.iter().copied())
            .collect();
        let mut rgcn = RgcnClassifier::selector(fold as u64);
        rgcn.train(&data, &cfg);
        let mut gcn = GcnClassifier::selector(fold as u64);
        gcn.train(&data, &cfg);

        for &ci in test_idx {
            let test = &bench.data[ci];
            let refs: Vec<&LayoutGraph> = test.units.iter().collect();
            if refs.is_empty() {
                continue;
            }
            let rgcn_probs = rgcn.predict_batch(&refs);
            let gcn_probs = gcn.predict_batch(&refs);
            for (i, &label) in labels[ci].iter().enumerate() {
                rgcn_cm.record(u8::from(rgcn_probs[i][1] > rgcn_probs[i][0]), label);
                gcn_cm.record(u8::from(gcn_probs[i][1] > gcn_probs[i][0]), label);
            }
        }
        eprintln!("fold {fold} done (test circuits {test_idx:?})");
    }

    println!("Table III: decomposer-selection quality (class 0 = ILP; labels vs baseline EC)\n");
    for (title, cm) in [
        ("(a) proposed RGCN", rgcn_cm),
        ("(b) conventional GCN", gcn_cm),
    ] {
        println!("{title}");
        print_table(
            &["", "labeled ILP", "labeled EC"],
            &[
                vec!["pred ILP".into(), cm.tp.to_string(), cm.fp.to_string()],
                vec!["pred EC".into(), cm.fn_.to_string(), cm.tn.to_string()],
            ],
        );
        println!(
            "recall {:.3}   precision {:.3}   F1 {:.3}   accuracy {:.3}\n",
            cm.recall(),
            cm.precision(),
            cm.f1(),
            cm.accuracy()
        );
    }
    println!("paper: RGCN F1 more than 2x the conventional GCN's; RGCN recall 100%.");
}
