//! Criterion bench: routing inference with the autodiff tape versus the
//! frozen (tape-free) engine, per-unit and batched. Quantifies the
//! tentpole claim that frozen-weight folding + scratch-buffer SpMM +
//! block-diagonal batching make the learned router cheap enough to run
//! on every decomposition unit.

use criterion::{criterion_group, criterion_main, Criterion};
use mpld::prepare;
use mpld_gnn::{InferBatch, RgcnClassifier};
use mpld_graph::{DecomposeParams, LayoutGraph};
use mpld_layout::circuit_by_name;

fn unit_graphs(n: usize) -> Vec<LayoutGraph> {
    let params = DecomposeParams::tpl();
    let layout = circuit_by_name("C1355").expect("known circuit").generate();
    let prep = prepare(&layout, &params);
    prep.units
        .iter()
        .take(n)
        .map(|u| u.hetero.clone())
        .collect()
}

fn bench_inference(c: &mut Criterion) {
    let graphs = unit_graphs(64);
    let refs: Vec<&LayoutGraph> = graphs.iter().collect();
    let mut group = c.benchmark_group("routing_inference");

    // The full routing cost per unit: one selector and one redundancy
    // forward, as the adaptive framework pays them.
    group.bench_function("tape_per_unit_x64", |b| {
        let sel = RgcnClassifier::selector(7);
        let red = RgcnClassifier::redundancy(7);
        b.iter(|| {
            let mut acc = 0f32;
            for g in &refs {
                acc += sel.predict(g)[0] + red.predict(g)[0];
            }
            acc
        })
    });

    group.bench_function("frozen_per_unit_x64", |b| {
        let sel = RgcnClassifier::selector(7).freeze();
        let red = RgcnClassifier::redundancy(7).freeze();
        b.iter(|| {
            let mut acc = 0f32;
            for g in &refs {
                acc += sel.predict(g)[0] + red.predict(g)[0];
            }
            acc
        })
    });

    group.bench_function("frozen_batched_x64", |b| {
        let sel = RgcnClassifier::selector(7).freeze();
        let red = RgcnClassifier::redundancy(7).freeze();
        b.iter(|| {
            let enc = InferBatch::new(&refs);
            let s = sel.infer_encoded(&enc);
            let r = red.predict_encoded(&enc);
            s.probs
                .iter()
                .zip(&r.probs)
                .map(|(a, b)| a[0] + b[0])
                .sum::<f32>()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
