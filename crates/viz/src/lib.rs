//! SVG rendering for MPLD layouts and decompositions.
//!
//! Renders a [`Layout`](mpld_layout::Layout) to a standalone SVG document: features filled by
//! their assigned mask color, optional overlays for conflict edges (red
//! lines between same-mask conflicting features) and stitch cuts. Useful
//! for debugging decompositions and producing documentation figures.
//!
//! # Example
//!
//! ```
//! use mpld_geometry::{Feature, Rect};
//! use mpld_layout::Layout;
//! use mpld_viz::{render_svg, SvgOptions};
//!
//! let layout = Layout {
//!     name: "demo".into(),
//!     d: 100,
//!     features: vec![
//!         Feature::new(0, vec![Rect::new(0, 0, 300, 40)]),
//!         Feature::new(1, vec![Rect::new(0, 80, 300, 120)]),
//!     ],
//! };
//! let svg = render_svg(&layout, Some(&[0, 1]), &SvgOptions::default());
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("rect"));
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod svg;

pub use svg::{render_svg, SvgOptions, MASK_PALETTE};
