//! Property-based tests for the graph substrate: cost function,
//! biconnected decomposition, and simplification + recovery.

use mpld_graph::simplify::{simplify, SimplifyOptions};
use mpld_graph::{biconnected_components, CostBreakdown, LayoutGraph};
use proptest::prelude::*;
use std::collections::HashSet;

/// Random homogeneous graph on up to 14 nodes.
fn arb_graph() -> impl Strategy<Value = LayoutGraph> {
    (2usize..14).prop_flat_map(|n| {
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| ((u + 1)..n as u32).map(move |v| (u, v)))
            .collect();
        prop::collection::vec(prop::bool::ANY, pairs.len()).prop_map(move |mask| {
            let edges = pairs
                .iter()
                .zip(&mask)
                .filter(|(_, &m)| m)
                .map(|(&e, _)| e)
                .collect();
            LayoutGraph::homogeneous(n, edges).expect("valid random graph")
        })
    })
}

/// Greedy coloring used as the per-unit decomposer in recovery tests.
fn greedy(g: &LayoutGraph, k: u8) -> Vec<u8> {
    let mut coloring = vec![0u8; g.num_nodes()];
    for v in 0..g.num_nodes() as u32 {
        let mut used = [false; 16];
        for &w in g.conflict_neighbors(v) {
            if w < v {
                used[coloring[w as usize] as usize] = true;
            }
        }
        coloring[v as usize] = (0..k).find(|&c| !used[c as usize]).unwrap_or(0);
    }
    coloring
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cost_is_invariant_under_color_permutation(g in arb_graph(), seed in 0u64..1000) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let coloring: Vec<u8> = (0..g.num_nodes()).map(|_| rng.gen_range(0..3)).collect();
        let perm = [2u8, 0, 1];
        let permuted: Vec<u8> = coloring.iter().map(|&c| perm[c as usize]).collect();
        prop_assert_eq!(g.evaluate(&coloring, 0.1), g.evaluate(&permuted, 0.1));
    }

    #[test]
    fn conflict_count_is_bounded_by_edges(g in arb_graph()) {
        let all_same = vec![0u8; g.num_nodes()];
        let cost = g.evaluate(&all_same, 0.1);
        prop_assert_eq!(cost.conflicts as usize, g.conflict_edges().len());
        prop_assert_eq!(cost.stitches, 0);
    }

    #[test]
    fn biconnected_blocks_partition_the_edges(g in arb_graph()) {
        let bct = biconnected_components(&g);
        // Every edge appears in exactly one block.
        let mut edge_seen: HashSet<(u32, u32)> = HashSet::new();
        for block in &bct.blocks {
            let set: HashSet<u32> = block.iter().copied().collect();
            for &(u, v) in g.conflict_edges() {
                if set.contains(&u) && set.contains(&v) {
                    // An edge internal to a block: record, detect double.
                    if !edge_seen.insert((u, v)) {
                        // An edge may lie in two blocks only if both its
                        // endpoints are articulation points of a bridge —
                        // impossible: blocks share at most one vertex.
                        prop_assert!(false, "edge ({u},{v}) in two blocks");
                    }
                }
            }
        }
        prop_assert_eq!(edge_seen.len(), g.conflict_edges().len());
        // Every node appears in some block.
        let covered: HashSet<u32> = bct.blocks.iter().flatten().copied().collect();
        prop_assert_eq!(covered.len(), g.num_nodes());
    }

    #[test]
    fn articulation_points_match_bruteforce(g in arb_graph()) {
        let bct = biconnected_components(&g);
        let base = g.connected_components().len();
        for v in 0..g.num_nodes() as u32 {
            // Remove v: does the component count (ignoring v) grow?
            let keep: Vec<u32> =
                (0..g.num_nodes() as u32).filter(|&u| u != v).collect();
            let (sub, _) = g.induced_subgraph(&keep);
            let removed_isolated = g.conflict_degree(v) == 0;
            let after = sub.connected_components().len();
            let expect_cut = after > base - usize::from(removed_isolated);
            prop_assert_eq!(
                bct.is_articulation[v as usize],
                expect_cut,
                "articulation mismatch at {} (base {}, after {})",
                v, base, after
            );
        }
    }

    #[test]
    fn recovery_cost_equals_sum_of_unit_costs(g in arb_graph()) {
        let k = 3u8;
        let s = simplify(&g, k, SimplifyOptions::default());
        let colorings: Vec<Vec<u8>> =
            s.units().iter().map(|u| greedy(&u.graph, k)).collect();
        let unit_total = s
            .units()
            .iter()
            .zip(&colorings)
            .map(|(u, c)| u.graph.evaluate(c, 0.1))
            .fold(CostBreakdown::default(), |a, b| a.combine(b));
        let rec = s.recover(&g, k, &colorings);
        let total = g.evaluate(&rec.coloring, 0.1);
        prop_assert_eq!(
            total.conflicts, unit_total.conflicts,
            "hidden-node recovery or block merging changed the cost"
        );
    }

    #[test]
    fn simplification_units_have_min_degree_k(g in arb_graph()) {
        let k = 3u8;
        let s = simplify(&g, k, SimplifyOptions::default());
        for unit in s.units() {
            for v in 0..unit.graph.num_nodes() as u32 {
                prop_assert!(unit.graph.conflict_degree(v) >= k as usize);
            }
        }
    }

    #[test]
    fn merge_stitch_edges_preserves_feature_conflicts(g in arb_graph()) {
        // Build a heterogeneous variant by splitting node 0 when possible,
        // then check the parent graph round-trips.
        if g.num_nodes() < 2 || g.conflict_degree(0) < 2 {
            return Ok(());
        }
        let n = g.num_nodes() as u32;
        let mut feat: Vec<u32> = (0..n).collect();
        feat.push(0);
        let mut ce: Vec<(u32, u32)> = Vec::new();
        for (i, &(u, v)) in g.conflict_edges().iter().enumerate() {
            // Alternate node 0's edges between its two subfeatures.
            if u == 0 && i % 2 == 0 {
                ce.push((n, v));
            } else {
                ce.push((u, v));
            }
        }
        let h = LayoutGraph::new(feat, ce, vec![(0, n)]).expect("valid split");
        let (parent, map) = h.merge_stitch_edges();
        prop_assert_eq!(parent.num_nodes(), g.num_nodes());
        prop_assert_eq!(map.len(), h.num_nodes());
        for &(u, v) in g.conflict_edges() {
            prop_assert!(parent.conflict_neighbors(u).contains(&v));
        }
    }
}
