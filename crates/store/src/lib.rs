//! # mpld-store — persistent, versioned graph-library store
//!
//! An append-only, fingerprint-bucketed, disk-backed store for the
//! adaptive framework's solved-graph library and tail-solve memo, so a
//! fresh process loads warm state in milliseconds instead of
//! re-enumerating and re-solving everything (ROADMAP item 4).
//!
//! ## On-disk format
//!
//! One JSONL file per [`StoreKey`], named `library-<keydigest>.jsonl`.
//! Line 1 is a header carrying the format version, the **model
//! fingerprint** (FNV-64 digest of the serialized framework weights),
//! and the layout parameters (`k`, `alpha` bit-exact, embedding dim,
//! library config token). Every following line is one record:
//!
//! - `{"t":"l",...}` — one graph-library entry (graph + embeddings +
//!   certified solution), f32s encoded as bit-pattern hex;
//! - `{"t":"ld","n":N}` — library dump completion marker (a dump
//!   without its marker is orphaned and ignored);
//! - `{"t":"s",...}` — one audit-clean tail solve (graph, routing side,
//!   engine, certainty, coloring, cost).
//!
//! ## Provenance and the re-key rule
//!
//! Learned embeddings are only trustworthy with model provenance
//! attached: an entry matched under a retrained model would be silently
//! wrong. The key digest covers the model fingerprint and every layout
//! parameter, so retraining or re-parameterising *re-keys* — it selects
//! a different file — and a header mismatch at the keyed path (version
//! bump, manual copy, partial key collision) moves the file aside as
//! `.stale` and starts fresh. A stale match is never served.
//!
//! ## Corruption tolerance
//!
//! The loader reuses the checkpoint journal's discipline: a torn final
//! line (the `kill -9` signature) is skipped; any malformed line is
//! counted and skipped; every surviving record is structurally
//! re-validated and its coloring re-audited against the independent
//! Eq. 1 checker before being trusted. Served hits additionally pass
//! the in-memory maps' structural-equality check, so a corrupt store
//! degrades to re-solving — never to a wrong answer.
//!
//! ## Write path
//!
//! [`StoreWriter`] buffers records and flushes in batches with one
//! `fsync` per batch (write-behind): the solve path never blocks on
//! durability, and a crash loses at most the buffered tail plus one
//! torn line. [`StoreCaps`] bounds entries/bytes for long-lived
//! servers; [`compact_file`] reclaims superseded and orphaned records
//! by rewrite-and-swap.

#![forbid(unsafe_code)]

mod format;
mod maint;
mod reader;
mod writer;

pub use format::{fnv64, Header, StoreKey, StoredSolve, TailEngine, FORMAT_VERSION};
pub use maint::{compact_and_verify, compact_dir, compact_file, compact_keyed, CompactReport};
pub use reader::{
    load, scan_dir, verify_dir, verify_file, FileStats, LoadReport, StoreLoad, VerifyReport,
};
pub use writer::{open, OpenedStore, StoreCaps, StoreWriter, WriterStats};

#[cfg(test)]
mod store_tests {
    use super::*;
    use mpld_graph::{Certainty, CostBreakdown, LayoutGraph};
    use std::path::{Path, PathBuf};

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let pid = std::process::id();
            let dir = std::env::temp_dir().join(format!("mpld-store-{tag}-{pid}"));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn key() -> StoreKey {
        StoreKey {
            model_digest: 0xdead_beef_cafe_f00d,
            k: 3,
            alpha: 0.1,
            dim: 8,
            library: "p6s1n7t1".to_string(),
        }
    }

    /// A path graph 0-1-2 across three features with a proper coloring.
    fn solve(tag: u32) -> StoredSolve {
        let graph = LayoutGraph::new(vec![0, 1, 2 + tag], vec![(0, 1), (1, 2)], vec![]).unwrap();
        StoredSolve {
            graph,
            ec_first: tag.is_multiple_of(2),
            engine: if tag.is_multiple_of(2) {
                TailEngine::Ec
            } else {
                TailEngine::Ilp
            },
            certainty: Certainty::Certified,
            coloring: vec![0, 1, 0],
            cost: CostBreakdown {
                conflicts: 0,
                stitches: 0,
            },
        }
    }

    #[test]
    fn open_load_roundtrip_with_dedup() {
        let dir = TempDir::new("roundtrip");
        let k = key();
        {
            let opened = open(dir.path(), &k, StoreCaps::default()).unwrap();
            assert_eq!(opened.load.report.solves, 0);
            opened.writer.append_solve(&solve(0));
            opened.writer.append_solve(&solve(1));
            // Same graph again: superseded on reload.
            opened.writer.append_solve(&solve(0));
            opened.writer.flush();
        }
        let opened = open(dir.path(), &k, StoreCaps::default()).unwrap();
        let r = opened.load.report;
        assert_eq!(r.solves, 2, "{r:?}");
        assert_eq!(r.superseded, 1);
        assert_eq!(r.skipped_corrupt, 0);
        assert!(!r.torn_tail);
        assert!(!r.rekeyed);
    }

    #[test]
    fn drop_flushes_pending() {
        let dir = TempDir::new("dropflush");
        let k = key();
        {
            let opened = open(dir.path(), &k, StoreCaps::default()).unwrap();
            opened.writer.append_solve(&solve(0));
            // No explicit flush: Drop must persist it.
        }
        let opened = open(dir.path(), &k, StoreCaps::default()).unwrap();
        assert_eq!(opened.load.report.solves, 1);
    }

    #[test]
    fn torn_tail_skipped_and_healed() {
        let dir = TempDir::new("torn");
        let k = key();
        {
            let opened = open(dir.path(), &k, StoreCaps::default()).unwrap();
            opened.writer.append_solve(&solve(0));
            opened.writer.flush();
        }
        let path = k.path_in(dir.path());
        // Simulate kill -9 mid-append: a partial record at EOF.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"{\"t\":\"s\",\"ec\":1,\"eng\":\"il").unwrap();
        drop(f);
        let opened = open(dir.path(), &k, StoreCaps::default()).unwrap();
        let r = opened.load.report;
        assert_eq!(r.solves, 1);
        assert!(r.torn_tail);
        // Appending after the tear must not corrupt the new record.
        opened.writer.append_solve(&solve(1));
        opened.writer.flush();
        drop(opened);
        let again = open(dir.path(), &k, StoreCaps::default()).unwrap();
        assert_eq!(again.load.report.solves, 2, "{:?}", again.load.report);
    }

    #[test]
    fn bit_flip_skipped_never_served() {
        let dir = TempDir::new("bitflip");
        let k = key();
        {
            let opened = open(dir.path(), &k, StoreCaps::default()).unwrap();
            opened.writer.append_solve(&solve(0));
            opened.writer.append_solve(&solve(1));
            opened.writer.flush();
        }
        let path = k.path_in(dir.path());
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the second record line (past the header and
        // first record).
        let newlines: Vec<usize> = bytes
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (b == b'\n').then_some(i))
            .collect();
        let target = newlines[1] + 10;
        bytes[target] ^= 0x4;
        std::fs::write(&path, &bytes).unwrap();
        let opened = open(dir.path(), &k, StoreCaps::default()).unwrap();
        let r = opened.load.report;
        assert_eq!(r.solves + r.skipped_corrupt + r.skipped_audit, 2, "{r:?}");
        assert!(r.skipped_corrupt + r.skipped_audit >= 1, "{r:?}");
        // Whatever loaded must still audit clean.
        for s in &opened.load.solves {
            let cost = mpld_graph::audit_coloring(&s.graph, &s.coloring, k.k).unwrap();
            assert_eq!(cost, s.cost);
        }
    }

    #[test]
    fn stale_model_fingerprint_rekeys() {
        let dir = TempDir::new("stale");
        let k = key();
        {
            let opened = open(dir.path(), &k, StoreCaps::default()).unwrap();
            opened.writer.append_solve(&solve(0));
            opened.writer.flush();
        }
        // A retrained model yields a different digest → different keyed
        // path → old file untouched, new file empty.
        let retrained = StoreKey {
            model_digest: k.model_digest ^ 1,
            ..key()
        };
        let opened = open(dir.path(), &retrained, StoreCaps::default()).unwrap();
        assert_eq!(opened.load.report.solves, 0);
        assert!(!opened.load.report.rekeyed);
        // Header mismatch AT the keyed path (e.g. manual copy): moved
        // aside, counted.
        drop(opened);
        std::fs::copy(k.path_in(dir.path()), retrained.path_in(dir.path())).unwrap();
        // Remove the fresh header-only file? No — copy overwrote it.
        let reopened = open(dir.path(), &retrained, StoreCaps::default()).unwrap();
        assert!(reopened.load.report.rekeyed);
        assert_eq!(reopened.load.report.solves, 0);
        let stale: Vec<_> = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "stale"))
            .collect();
        assert_eq!(stale.len(), 1);
    }

    #[test]
    fn caps_drop_not_error() {
        let dir = TempDir::new("caps");
        let k = key();
        let caps = StoreCaps {
            max_entries: Some(1),
            max_bytes: None,
        };
        let opened = open(dir.path(), &k, caps).unwrap();
        opened.writer.append_solve(&solve(0));
        opened.writer.append_solve(&solve(1));
        opened.writer.flush();
        let stats = opened.writer.stats();
        assert_eq!(stats.appended, 1);
        assert_eq!(stats.dropped, 1);
        drop(opened);
        let reopened = open(dir.path(), &k, caps).unwrap();
        assert_eq!(reopened.load.report.solves, 1);
    }

    #[test]
    fn compact_reclaims_superseded_and_corrupt() {
        let dir = TempDir::new("compact");
        let k = key();
        {
            let opened = open(dir.path(), &k, StoreCaps::default()).unwrap();
            opened.writer.append_solve(&solve(0));
            opened.writer.append_solve(&solve(0));
            opened.writer.append_solve(&solve(1));
            opened.writer.flush();
        }
        let path = k.path_in(dir.path());
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"not json at all}\n").unwrap();
        drop(f);
        let (report, clean) = compact_and_verify(&path).unwrap();
        assert!(clean);
        assert_eq!(report.kept_solves, 2);
        assert_eq!(report.dropped_superseded, 1);
        assert_eq!(report.dropped_corrupt, 1);
        assert!(report.bytes_after < report.bytes_before);
        let opened = open(dir.path(), &k, StoreCaps::default()).unwrap();
        assert_eq!(opened.load.report.solves, 2);
        assert_eq!(opened.load.report.superseded, 0);
    }

    #[test]
    fn scan_and_verify_dir() {
        let dir = TempDir::new("scan");
        let k = key();
        {
            let opened = open(dir.path(), &k, StoreCaps::default()).unwrap();
            opened.writer.append_solve(&solve(0));
            opened.writer.flush();
        }
        let stats = scan_dir(dir.path()).unwrap();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].solves, 1);
        assert_eq!(stats[0].buckets, 1);
        let h = stats[0].header.as_ref().unwrap();
        assert_eq!(h.model_digest, k.model_digest);
        let reports = verify_dir(dir.path()).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].is_clean());
        assert_eq!(reports[0].clean, 1);
    }

    /// Property test: single-byte corruption anywhere in the file never
    /// panics the loader and never yields a record whose coloring fails
    /// the independent audit.
    #[test]
    fn property_random_corruption_never_panics_or_lies() {
        use proptest::Strategy;
        let dir = TempDir::new("prop");
        let k = key();
        {
            let opened = open(dir.path(), &k, StoreCaps::default()).unwrap();
            for t in 0..6 {
                opened.writer.append_solve(&solve(t));
            }
            opened.writer.flush();
        }
        let pristine = std::fs::read(k.path_in(dir.path())).unwrap();
        let len = pristine.len();
        let strategy = (0usize..len, 0u8..=255u8);
        let mut rng = proptest::rng_for_test("property_random_corruption_never_panics_or_lies");
        for _ in 0..128 {
            let (pos, val) = strategy.sample_value(&mut rng);
            let mut bytes = pristine.clone();
            bytes[pos] = val;
            std::fs::write(k.path_in(dir.path()), &bytes).unwrap();
            let loaded = load(dir.path(), &k).unwrap();
            for s in &loaded.solves {
                let cost = mpld_graph::audit_coloring(&s.graph, &s.coloring, k.k)
                    .expect("loaded record fails audit");
                assert_eq!(cost, s.cost, "corrupt byte {pos}={val} served a wrong cost");
            }
        }
    }
}
