//! Fig. 9 — runtime breakdown of the adaptive framework over the whole
//! suite: time spent in the selected decomposers (ILP, EC), ColorGNN,
//! library matching, algorithm selection, and redundancy prediction.

use mpld::TimingBreakdown;
use mpld_bench::{fmt_duration, print_table, train_fold, Bench};
use std::time::Duration;

fn main() {
    let bench = Bench::load();
    let mut total = TimingBreakdown::default();
    for (train_idx, test_idx) in bench.folds() {
        if train_idx.is_empty() {
            continue;
        }
        let fw = train_fold(&bench, &train_idx);
        for &ci in &test_idx {
            let r = fw.decompose_prepared(&bench.prepared[ci]);
            total.matching += r.timing.matching;
            total.selection += r.timing.selection;
            total.redundancy += r.timing.redundancy;
            total.colorgnn += r.timing.colorgnn;
            total.ilp += r.timing.ilp;
            total.ec += r.timing.ec;
        }
        eprintln!("fold tested {test_idx:?}");
    }

    let sum = total.total().as_secs_f64().max(1e-12);
    let pct = |d: Duration| format!("{:.2}%", 100.0 * d.as_secs_f64() / sum);
    println!("\nFig. 9: runtime breakdown of the adaptive framework\n");
    print_table(
        &["category", "time", "share"],
        &[
            vec![
                "ILP decomposition".into(),
                fmt_duration(total.ilp),
                pct(total.ilp),
            ],
            vec![
                "EC decomposition".into(),
                fmt_duration(total.ec),
                pct(total.ec),
            ],
            vec![
                "ColorGNN decomposition".into(),
                fmt_duration(total.colorgnn),
                pct(total.colorgnn),
            ],
            vec![
                "selection (embed + match index)".into(),
                fmt_duration(total.selection),
                pct(total.selection),
            ],
            vec![
                "library matching".into(),
                fmt_duration(total.matching),
                pct(total.matching),
            ],
            vec![
                "redundancy prediction".into(),
                fmt_duration(total.redundancy),
                pct(total.redundancy),
            ],
        ],
    );
    let selected = total.ilp + total.ec + total.colorgnn;
    println!(
        "\nselected decomposers account for {:.2}% of the total (paper: ILP + DL = 84.31%)",
        100.0 * selected.as_secs_f64() / sum
    );
}
