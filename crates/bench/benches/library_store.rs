//! Criterion bench: the persistent library/tail-solve store. Measures
//! the two paths the serving flywheel depends on: append throughput
//! (write-behind batched fsync) and the bounded streaming load that a
//! warm process pays at startup — the latter must stay in the
//! milliseconds range for store-backed startup to beat re-solving.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpld_graph::{audit_coloring, Certainty, LayoutGraph};
use mpld_store::{open, StoreCaps, StoreKey, StoredSolve, TailEngine};

const K: u8 = 3;

fn bench_key() -> StoreKey {
    StoreKey {
        model_digest: 0xBE7C4_u64,
        k: K,
        alpha: 0.1,
        dim: 16,
        library: "p6s1n7t1".to_string(),
    }
}

/// Deterministic family of small unit graphs shaped like real tail
/// units: rings with one chord, 4–9 nodes, greedily colored and costed
/// through the independent Eq. 1 auditor (so every record is
/// audit-clean, as certified solves are in production).
fn synthetic_solves(n: usize) -> Vec<StoredSolve> {
    (0..n)
        .map(|i| {
            let nodes = 4 + (i % 6) as u32;
            let mut edges: Vec<(u32, u32)> = (0..nodes).map(|v| (v, (v + 1) % nodes)).collect();
            let chord = ((i as u32) % nodes, ((i as u32) + 2) % nodes);
            if chord.0 != chord.1 && !edges.contains(&chord) && !edges.contains(&(chord.1, chord.0))
            {
                edges.push(chord);
            }
            let graph = LayoutGraph::homogeneous(nodes as usize, edges).expect("valid ring graph");
            // Greedy coloring clamped to K masks; conflicts that remain
            // are simply part of the audited cost.
            let mut coloring = vec![0u8; nodes as usize];
            for v in 0..nodes as usize {
                let mut used = [false; 8];
                for &(a, b) in graph.conflict_edges() {
                    let (a, b) = (a as usize, b as usize);
                    if a == v && b < v {
                        used[coloring[b] as usize] = true;
                    }
                    if b == v && a < v {
                        used[coloring[a] as usize] = true;
                    }
                }
                let c = (0..K).find(|&c| !used[c as usize]).unwrap_or(K - 1);
                coloring[v] = c;
            }
            let cost = audit_coloring(&graph, &coloring, K).expect("greedy coloring audits");
            StoredSolve {
                graph,
                ec_first: i % 2 == 0,
                engine: if i % 2 == 0 {
                    TailEngine::Ec
                } else {
                    TailEngine::Ilp
                },
                certainty: Certainty::Certified,
                coloring,
                cost,
            }
        })
        .collect()
}

struct TempDir(std::path::PathBuf);

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn temp_dir(tag: &str) -> TempDir {
    let dir = std::env::temp_dir().join(format!("mpld-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    TempDir(dir)
}

fn bench_library_store(c: &mut Criterion) {
    let key = bench_key();
    let mut group = c.benchmark_group("library_store");

    // Append path: what each fresh certified tail solve costs the
    // serving loop (buffered render + batched fsync every 32 records).
    let solves = synthetic_solves(256);
    let append_dir = temp_dir("append");
    group.bench_function("append_256", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&append_dir.0);
            let opened = open(&append_dir.0, &key, StoreCaps::default()).expect("open store");
            for s in &solves {
                opened.writer.append_solve(s);
            }
            opened.writer.flush();
            opened.writer.stats().appended
        })
    });

    // Load path: warm-start cost at three store sizes — parse, rebuild
    // every graph through validation, re-audit every coloring, dedup.
    for n in [64usize, 256, 1024] {
        let dir = temp_dir(&format!("load{n}"));
        {
            let opened = open(&dir.0, &key, StoreCaps::default()).expect("open store");
            for s in synthetic_solves(n) {
                opened.writer.append_solve(&s);
            }
        }
        group.bench_with_input(BenchmarkId::new("load", n), &n, |b, _| {
            b.iter(|| {
                let loaded = mpld_store::load(&dir.0, &key).expect("load store");
                assert!(loaded.report.solves > 0);
                assert_eq!(loaded.report.skipped_corrupt, 0);
                loaded.report.solves
            })
        });
    }

    // Compaction: rewrite-and-swap over a store with superseded
    // duplicates (every record appended twice).
    let compact_dir = temp_dir("compact");
    group.bench_function("compact_512_records", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&compact_dir.0);
            let opened = open(&compact_dir.0, &key, StoreCaps::default()).expect("open store");
            for s in &solves {
                opened.writer.append_solve(s);
                opened.writer.append_solve(s);
            }
            opened.writer.flush();
            let report =
                mpld_store::compact_file(&key.path_in(&compact_dir.0)).expect("compact store");
            // At least the literal second copies are superseded (the
            // synthetic family also repeats some graphs within itself).
            assert!(report.dropped_superseded >= 256);
            report.kept_solves
        })
    });

    group.finish();
}

criterion_group!(benches, bench_library_store);
criterion_main!(benches);
