//! Decomposition as a service: a long-lived HTTP/NDJSON endpoint over
//! one warm, shared [`Engine`].
//!
//! The server loads a trained framework once, compiles the frozen
//! inference heads once ([`Engine::new`]), and then serves any number of
//! requests from a fixed worker pool — every request shares the engine's
//! cross-request routing memo and solution caches, so repeated layouts
//! skip inference and tail solves entirely while staying bit-identical
//! to a cold run (the engine's parity contract).
//!
//! Deliberately dependency-free: `std::net::TcpListener`, hand-rolled
//! HTTP/1.1 parsing for the three routes it owns, and newline-delimited
//! JSON for streaming. The protocol:
//!
//! - `GET /healthz` — liveness + engine cache counters.
//! - `GET /stats` — the same counters without the liveness wrapper.
//! - `POST /decompose` with a JSON body
//!   `{"circuit":"C432","seed":7,"time_limit_ms":500}` (seed and
//!   time_limit_ms optional) — responds `200` with
//!   `Content-Type: application/x-ndjson` and streams one `routed` event,
//!   one `unit` event per ILP/EC-tail unit, then a final `done` line
//!   whose `summary` field is the [`RunSummary`] object also emitted by
//!   `mpld adaptive --json`. Deadlines return best-so-far incumbents,
//!   never errors.
//!
//! Admission control is a bounded queue: when every worker is busy and
//! the backlog is full, new connections are rejected immediately with
//! `429 Too Many Requests` instead of queueing without bound. Shutdown
//! (SIGTERM/SIGINT, or the shutdown flag in-process) drains: the
//! acceptor stops, queued requests finish, workers join, and the
//! process exits cleanly.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use mpld::{prepare, BudgetPolicy, Engine, PreparedLayout, Progress, RunSummary, Session};
use mpld_layout::circuit_by_name;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tuning knobs of one [`serve`] loop.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Request worker threads (each drives its own [`Session`]).
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker; beyond this
    /// the acceptor answers `429` immediately.
    pub queue_depth: usize,
    /// Per-connection socket read timeout (a stalled client releases
    /// its worker after this long).
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 16,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Default seed for requests that do not pin one — matches the perf
/// harness so served digests line up with the committed baselines.
pub const DEFAULT_SEED: u64 = 0xBEEF;

/// Process-wide drain flag set by the SIGTERM/SIGINT handlers installed
/// by [`install_signal_handlers`].
static SIGNALED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALED.store(true, Ordering::SeqCst);
}

extern "C" {
    // Provided by libc, which std always links on this platform.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Installs SIGTERM/SIGINT handlers that flip the returned flag; pass it
/// to [`serve`] as the shutdown flag for signal-driven graceful drain.
pub fn install_signal_handlers() -> &'static AtomicBool {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: on_signal is async-signal-safe (a single atomic store) and
    // stays alive for the program's lifetime.
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
    &SIGNALED
}

/// Per-circuit prepared-layout cache: preparation (simplification +
/// unit extraction) is deterministic, so one shared copy serves every
/// request for the same circuit.
struct PrepCache {
    engine: Arc<Engine>,
    preps: Mutex<HashMap<String, Arc<PreparedLayout>>>,
}

impl PrepCache {
    fn get(&self, circuit: &str) -> Option<Arc<PreparedLayout>> {
        if let Some(p) = self.preps.lock().ok().and_then(|m| m.get(circuit).cloned()) {
            return Some(p);
        }
        let generator = circuit_by_name(circuit)?;
        let prep = Arc::new(prepare(
            &generator.generate(),
            &self.engine.framework().params,
        ));
        if let Ok(mut m) = self.preps.lock() {
            // First writer wins; a racing prepare produced the same value.
            return Some(m.entry(circuit.to_string()).or_insert(prep).clone());
        }
        Some(prep)
    }
}

/// Runs the accept/drain loop until `shutdown` turns true, serving
/// requests from `workers` threads that share `engine`. Returns once
/// every queued request has finished and all workers have joined.
///
/// The listener is switched to non-blocking so the acceptor can poll the
/// shutdown flag; worker sockets themselves stay blocking (with
/// `read_timeout`).
///
/// # Errors
///
/// Only listener-level failures (e.g. `set_nonblocking`) surface as
/// errors; per-connection failures are logged to stderr and dropped.
pub fn serve(
    engine: Arc<Engine>,
    listener: TcpListener,
    cfg: &ServerConfig,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let (tx, rx) = sync_channel::<TcpStream>(cfg.queue_depth);
    let rx = Arc::new(Mutex::new(rx));
    let cache = Arc::new(PrepCache {
        engine,
        preps: Mutex::new(HashMap::new()),
    });

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..cfg.workers.max(1) {
            let rx = Arc::clone(&rx);
            let cache = Arc::clone(&cache);
            let read_timeout = cfg.read_timeout;
            handles.push(scope.spawn(move || worker_loop(&rx, &cache, read_timeout)));
        }

        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => respond_busy(stream),
                    Err(TrySendError::Disconnected(_)) => break,
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => eprintln!("mpld-server: accept failed: {e}"),
            }
        }

        // Graceful drain: close the queue; workers finish what is queued,
        // see the disconnect, and return.
        drop(tx);
        for h in handles {
            let _ = h.join();
        }
    });
    Ok(())
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    cache: &Arc<PrepCache>,
    read_timeout: Duration,
) {
    loop {
        // Hold the receiver lock only for the dequeue, not the request.
        let stream = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(stream) = stream else { return }; // queue closed: drain done
        let _ = stream.set_read_timeout(Some(read_timeout));
        if let Err(e) = handle_connection(stream, cache) {
            eprintln!("mpld-server: request failed: {e}");
        }
    }
}

/// The one admission-control response, written straight from the
/// acceptor thread so a saturated pool still answers instantly.
fn respond_busy(mut stream: TcpStream) {
    let _ = stream.write_all(
        b"HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\n\
          Connection: close\r\nContent-Length: 26\r\n\r\n{\"error\":\"queue is full\"}\n",
    );
}

fn handle_connection(stream: TcpStream, cache: &Arc<PrepCache>) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);

    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();

    // Headers: only Content-Length matters to us.
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().unwrap_or(0);
        }
    }

    match (method.as_str(), path.as_str()) {
        ("GET", "/healthz") => {
            let s = cache.engine.stats();
            respond_json(
                reader.into_inner(),
                "200 OK",
                &format!(
                    "{{\"status\":\"ok\",\"routing_entries\":{},\"routing_hits\":{},\
                     \"solution_entries\":{}}}",
                    s.routing.entries,
                    s.routing.hits,
                    s.solutions_ilp_first.entries + s.solutions_ec_first.entries
                ),
            )
        }
        ("GET", "/stats") => {
            let s = cache.engine.stats();
            respond_json(
                reader.into_inner(),
                "200 OK",
                &format!(
                    "{{\"routing\":{},\"solutions_ilp_first\":{},\"solutions_ec_first\":{}}}",
                    map_stats_json(&s.routing),
                    map_stats_json(&s.solutions_ilp_first),
                    map_stats_json(&s.solutions_ec_first)
                ),
            )
        }
        ("POST", "/decompose") => {
            let mut body = vec![0u8; content_length.min(1 << 20)];
            reader.read_exact(&mut body)?;
            let body = String::from_utf8_lossy(&body).into_owned();
            handle_decompose(reader.into_inner(), cache, &body)
        }
        _ => respond_json(
            reader.into_inner(),
            "404 Not Found",
            "{\"error\":\"unknown route\"}",
        ),
    }
}

fn respond_json(mut stream: TcpStream, status: &str, body: &str) -> std::io::Result<()> {
    let mut body = body.to_string();
    body.push('\n');
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Extracts the token following `"key":` from a flat JSON object —
/// enough for the three-field request body this server accepts.
fn body_field<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let rest = &body[body.find(&pat)? + pat.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.find('"').map(|end| &stripped[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

fn handle_decompose(
    mut stream: TcpStream,
    cache: &Arc<PrepCache>,
    body: &str,
) -> std::io::Result<()> {
    let Some(circuit) = body_field(body, "circuit") else {
        return respond_json(
            stream,
            "400 Bad Request",
            "{\"error\":\"missing \\\"circuit\\\"\"}",
        );
    };
    let seed: u64 = body_field(body, "seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let time_limit = body_field(body, "time_limit_ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis);

    let Some(prep) = cache.get(circuit) else {
        return respond_json(
            stream,
            "404 Not Found",
            &format!("{{\"error\":\"unknown circuit {circuit:?}\"}}"),
        );
    };

    // Streaming NDJSON: no Content-Length, the body ends when the
    // connection closes (Connection: close).
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )?;

    let policy = BudgetPolicy {
        total: time_limit,
        ..BudgetPolicy::unlimited()
    };
    let mut session = Session::with_policy(seed, policy);
    let mut stream_err: Option<std::io::Error> = None;
    let result = {
        let mut on_event = |e: Progress| {
            if stream_err.is_some() {
                return; // client went away: finish the solve, skip writes
            }
            let line = match e {
                Progress::Routed {
                    units,
                    matched,
                    colorgnn,
                    routing_memo_hits,
                } => format!(
                    "{{\"event\":\"routed\",\"units\":{units},\"matched\":{matched},\
                     \"colorgnn\":{colorgnn},\"routing_memo_hits\":{routing_memo_hits}}}"
                ),
                Progress::Unit {
                    index,
                    engine,
                    certainty,
                    cached,
                } => format!(
                    "{{\"event\":\"unit\",\"index\":{index},\"engine\":\"{engine:?}\",\
                     \"certainty\":\"{certainty:?}\",\"cached\":{cached}}}"
                ),
            };
            if let Err(e) = writeln!(stream, "{line}").and_then(|()| stream.flush()) {
                stream_err = Some(e);
            }
        };
        cache
            .engine
            .decompose_with_progress(&prep, &mut session, &mut on_event)
    };
    if let Some(e) = stream_err {
        return Err(e);
    }

    match result {
        Ok(r) => {
            let summary = RunSummary::from_result(
                &prep.name,
                &r,
                cache.engine.framework().params.alpha,
                1,
                Some(seed),
            );
            writeln!(
                stream,
                "{{\"event\":\"done\",\"summary\":{}}}",
                summary.to_json()
            )?;
        }
        Err(e) => {
            writeln!(
                stream,
                "{{\"event\":\"error\",\"message\":{:?}}}",
                e.to_string()
            )?;
        }
    }
    stream.flush()
}

fn map_stats_json(s: &mpld::ShardedMapStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"entries\":{}}}",
        s.hits, s.misses, s.entries
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_fields_parse() {
        let b = r#"{"circuit":"C432","seed":7,"time_limit_ms":500}"#;
        assert_eq!(body_field(b, "circuit"), Some("C432"));
        assert_eq!(body_field(b, "seed"), Some("7"));
        assert_eq!(body_field(b, "time_limit_ms"), Some("500"));
        assert_eq!(body_field(b, "missing"), None);
        // Whitespace-tolerant.
        let b = r#"{ "circuit" : "C499" , "seed" : 12 }"#;
        assert_eq!(body_field(b, "circuit"), Some("C499"));
        assert_eq!(body_field(b, "seed"), Some("12"));
    }

    #[test]
    fn default_config_is_sane() {
        let c = ServerConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_depth >= 1);
    }
}
