//! Decomposition as a service: a long-lived HTTP/NDJSON endpoint over
//! one warm, shared [`Engine`], with durable, resumable jobs.
//!
//! The server loads a trained framework once, compiles the frozen
//! inference heads once ([`Engine::new`]), and then serves any number of
//! requests from a fixed worker pool — every request shares the engine's
//! cross-request routing memo and solution caches, so repeated layouts
//! skip inference and tail solves entirely while staying bit-identical
//! to a cold run (the engine's parity contract).
//!
//! Deliberately dependency-free: `std::net::TcpListener`, hand-rolled
//! *bounded* HTTP/1.1 parsing ([`http`]) for the routes it owns, and
//! newline-delimited JSON for streaming. The protocol:
//!
//! - `GET /healthz` — liveness (`ok`, or `draining` once shutdown has
//!   been requested) + queue depth, uptime, and engine cache counters.
//! - `GET /stats` — cache, job, and journal counters.
//! - `POST /decompose` — either a JSON body
//!   `{"circuit":"C432","seed":7,"time_limit_ms":500,"job_id":"a1"}`
//!   (everything but `circuit` optional) or a **raw layout upload** in
//!   the workspace layout format, with `seed`/`time_limit_ms`/`job_id`
//!   as query parameters. Responds `200` with
//!   `Content-Type: application/x-ndjson` and streams a `job` event
//!   naming the job id, one `routed` event, one `unit` event per
//!   ILP/EC-tail unit, then a final `done` line whose `summary` field is
//!   the [`RunSummary`] object also emitted by `mpld adaptive --json`.
//!   Deadlines return best-so-far incumbents, never errors.
//! - `GET /jobs/<id>` — reattach to an in-flight or finished job: its
//!   NDJSON event log replays from the start, then follows live.
//!
//! # Durable jobs
//!
//! Every decomposition is a **job** with a stable id — client-supplied
//! or derived from the request content — that is idempotent at three
//! scopes. In-process, the [`jobs::JobRegistry`] maps a re-submitted id
//! to the already-running (or finished) job and replays its event log
//! instead of re-solving. On disk, when [`ServerConfig::journal_dir`] is
//! set, each job's ILP/EC-tail solves stream into an append-only JSONL
//! journal (`<dir>/<job id>.jsonl`, the same format `mpld adaptive
//! --checkpoint` writes); a server killed mid-job and restarted over the
//! same directory resumes the re-submitted job from the journal — each
//! restored record is audited against the present unit graph, torn final
//! lines are tolerated, and a header mismatch (different layout, k,
//! alpha, or unit count) discards the journal and restarts from scratch
//! rather than silently reusing foreign records. The resumed run's
//! digests are bit-identical to an uninterrupted run. Uploads are capped
//! ([`ServerConfig::upload`]) and parse failures answer with typed 400s
//! carrying the offending line number.
//!
//! Admission control is a bounded queue: when every worker is busy and
//! the backlog is full, new connections are rejected immediately with
//! `429 Too Many Requests` instead of queueing without bound. Shutdown
//! (SIGTERM/SIGINT, or the shutdown flag in-process) drains: queued
//! requests finish while `/healthz` reports `draining` and new work is
//! refused with `503`, then workers join and the process exits cleanly.
//! A panic inside a request (including injected chaos panics) is caught
//! at the connection boundary: the connection drops, the job is marked
//! failed and forgotten (so a retry re-runs it), and the worker lives on.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod http;
pub mod jobs;

pub use client::{submit, ClientConfig, ClientError, SubmitBody, SubmitOutcome, SubmitRequest};
pub use http::HttpLimits;
pub use jobs::{derive_job_id, valid_job_id};

use http::HttpError;
use jobs::{Claim, Job, JobRegistry};
use mpld::{
    audit_boundary_units, prepare, prepare_tiled, BudgetPolicy, Checkpoint, CheckpointHeader,
    Engine, JournalWriter, PreparedLayout, Progress, Recovery, RunSummary, Session, TiledProgress,
    TiledRunSummary, TiledStats, TilingConfig,
};
use mpld_graph::MpldError;
use mpld_layout::{circuit_by_name, read_layout_limited, Layout, ReadLimits};
use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs of one [`serve`] loop.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Request worker threads (each drives its own [`Session`]).
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker; beyond this
    /// the acceptor answers `429` immediately.
    pub queue_depth: usize,
    /// Per-connection socket read timeout (a stalled client releases
    /// its worker after this long).
    pub read_timeout: Duration,
    /// Directory for per-job JSONL journals; `None` disables journaling
    /// (jobs are still idempotent in-process, but not across restarts).
    pub journal_dir: Option<PathBuf>,
    /// Request parsing caps (request line, headers, body size).
    pub http: HttpLimits,
    /// Layout upload parsing caps (line length, rect/feature counts).
    pub upload: ReadLimits,
    /// `Some` switches preparation to the tiled pipeline: layouts are
    /// windowed into halo-exact tiles, per-tile progress is streamed as
    /// NDJSON events to the job that triggered the preparation, boundary
    /// units are re-audited after every solve, and run summaries carry a
    /// tiled section. Costs and colorings are bit-identical to the
    /// monolithic path (see `mpld::prepare_tiled`).
    pub tiling: Option<TilingConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 16,
            read_timeout: Duration::from_secs(10),
            journal_dir: None,
            http: HttpLimits::default(),
            upload: ReadLimits::UNTRUSTED,
            tiling: None,
        }
    }
}

/// Default seed for requests that do not pin one — matches the perf
/// harness so served digests line up with the committed baselines.
pub const DEFAULT_SEED: u64 = 0xBEEF;

/// Process-wide drain flag set by the SIGTERM/SIGINT handlers installed
/// by [`install_signal_handlers`].
static SIGNALED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALED.store(true, Ordering::SeqCst);
}

extern "C" {
    // Provided by libc, which std always links on this platform.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Installs SIGTERM/SIGINT handlers that flip the returned flag; pass it
/// to [`serve`] as the shutdown flag for signal-driven graceful drain.
pub fn install_signal_handlers() -> &'static AtomicBool {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: on_signal is async-signal-safe (a single atomic store) and
    // stays alive for the program's lifetime.
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
    &SIGNALED
}

/// Monotonic serving counters surfaced by `/stats` and `/healthz`.
#[derive(Debug, Default)]
struct Counters {
    jobs_started: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    resumed_units: AtomicU64,
    journal_records: AtomicU64,
    journal_restarts: AtomicU64,
    rejected_busy: AtomicU64,
    bad_requests: AtomicU64,
    request_panics: AtomicU64,
    tiled_preps: AtomicU64,
    tiles_prepared: AtomicU64,
    boundary_resolves: AtomicU64,
}

/// Tiled-preparation byproducts cached alongside a prepared layout so
/// every job over it can re-audit boundary units and report tile counts.
struct TiledExtra {
    stats: TiledStats,
    boundary_units: Vec<usize>,
}

/// A cached preparation: the layout plus, in tiled mode, its tiling
/// byproducts. Monolithic and tiled entries are interchangeable for the
/// solve itself — the prepared layout is bit-identical either way.
struct PrepEntry {
    prep: PreparedLayout,
    tiled: Option<TiledExtra>,
}

/// Everything one serving loop shares between acceptor and workers.
struct ServerState {
    engine: Arc<Engine>,
    /// Per-circuit prepared-layout cache: preparation is deterministic,
    /// so one shared copy serves every request for the same circuit.
    preps: Mutex<HashMap<String, Arc<PrepEntry>>>,
    /// Prepared uploads keyed by a content hash; crudely bounded.
    upload_preps: Mutex<HashMap<u64, Arc<PrepEntry>>>,
    registry: JobRegistry,
    journal_dir: Option<PathBuf>,
    upload_limits: ReadLimits,
    tiling: Option<TilingConfig>,
    http_limits: HttpLimits,
    started: Instant,
    queued: AtomicU64,
    active: AtomicU64,
    draining: AtomicBool,
    counters: Counters,
}

/// Uploads kept prepared in memory at once (beyond this the cache is
/// simply cleared; preparation is deterministic so a re-prepare is only
/// a cost, never a behavior change).
const MAX_UPLOAD_PREPS: usize = 32;

impl ServerState {
    fn prep_circuit(&self, circuit: &str, events: &mut Vec<String>) -> Option<Arc<PrepEntry>> {
        if let Some(p) = self.preps.lock().ok().and_then(|m| m.get(circuit).cloned()) {
            return Some(p);
        }
        let generator = circuit_by_name(circuit)?;
        let entry = Arc::new(self.prepare_entry(&generator.generate(), events));
        if let Ok(mut m) = self.preps.lock() {
            // First writer wins; a racing prepare produced the same value.
            return Some(m.entry(circuit.to_string()).or_insert(entry).clone());
        }
        Some(entry)
    }

    /// Parses and prepares an uploaded layout under the configured caps.
    fn prep_upload(
        &self,
        body: &[u8],
        events: &mut Vec<String>,
    ) -> Result<Arc<PrepEntry>, MpldError> {
        let key = fnv64(body);
        if let Some(p) = self
            .upload_preps
            .lock()
            .ok()
            .and_then(|m| m.get(&key).cloned())
        {
            return Ok(p);
        }
        let layout = read_layout_limited(body, &self.upload_limits)?;
        let entry = Arc::new(self.prepare_entry(&layout, events));
        if let Ok(mut m) = self.upload_preps.lock() {
            if m.len() >= MAX_UPLOAD_PREPS {
                m.clear();
            }
            return Ok(m.entry(key).or_insert(entry).clone());
        }
        Ok(entry)
    }

    /// Monolithic or tiled preparation per the server's configuration.
    /// In tiled mode the per-tile progress is rendered to NDJSON lines
    /// pushed into `events` — the requesting job replays them at the
    /// start of its stream (cache hits skip them: preparation already
    /// happened) — and the tiling byproducts are kept for the per-solve
    /// boundary audit.
    fn prepare_entry(&self, layout: &Layout, events: &mut Vec<String>) -> PrepEntry {
        let params = self.engine.framework().params;
        let Some(config) = &self.tiling else {
            return PrepEntry {
                prep: prepare(layout, &params),
                tiled: None,
            };
        };
        let buffered = Mutex::new(Vec::new());
        let tp = prepare_tiled(layout, &params, config, &|p| {
            if let Ok(mut b) = buffered.lock() {
                b.push(tiled_progress_json(&p));
            }
        });
        events.extend(buffered.into_inner().unwrap_or_default());
        let c = &self.counters;
        c.tiled_preps.fetch_add(1, Ordering::Relaxed);
        c.tiles_prepared.fetch_add(
            (tp.stats.tiles_x * tp.stats.tiles_y) as u64,
            Ordering::Relaxed,
        );
        c.boundary_resolves
            .fetch_add(tp.stats.boundary_resolves as u64, Ordering::Relaxed);
        PrepEntry {
            prep: tp.prep,
            tiled: Some(TiledExtra {
                stats: tp.stats,
                boundary_units: tp.boundary_units,
            }),
        }
    }

    fn journal_path(&self, job_id: &str) -> Option<PathBuf> {
        self.journal_dir
            .as_ref()
            .map(|d| d.join(format!("{job_id}.jsonl")))
    }
}

/// One tiled-preparation milestone as an NDJSON event line.
fn tiled_progress_json(p: &TiledProgress) -> String {
    match *p {
        TiledProgress::Scanned { features, rects } => {
            format!("{{\"event\":\"tiled_scan\",\"features\":{features},\"rects\":{rects}}}")
        }
        TiledProgress::Grid {
            tiles_x,
            tiles_y,
            tile_span,
            halo,
        } => format!(
            "{{\"event\":\"tiled_grid\",\"tiles_x\":{tiles_x},\"tiles_y\":{tiles_y},\
             \"tile_span\":{tile_span},\"halo\":{halo}}}"
        ),
        TiledProgress::Tile {
            index,
            total,
            features,
            edges,
        } => format!(
            "{{\"event\":\"tile\",\"index\":{index},\"total\":{total},\
             \"features\":{features},\"edges\":{edges}}}"
        ),
        TiledProgress::Simplified {
            edges,
            units,
            boundary_units,
        } => format!(
            "{{\"event\":\"tiled_simplified\",\"edges\":{edges},\"units\":{units},\
             \"boundary_units\":{boundary_units}}}"
        ),
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Runs the accept/drain loop until `shutdown` turns true, serving
/// requests from `workers` threads that share `engine`. Returns once
/// every queued request has finished and all workers have joined.
///
/// The listener is switched to non-blocking so the acceptor can poll the
/// shutdown flag; worker sockets themselves stay blocking (with
/// `read_timeout`). During the drain the acceptor keeps answering:
/// `/healthz` reports `draining`, everything else gets `503`.
///
/// # Errors
///
/// Only listener-level failures (e.g. `set_nonblocking`) surface as
/// errors; per-connection failures are logged to stderr and dropped.
pub fn serve(
    engine: Arc<Engine>,
    listener: TcpListener,
    cfg: &ServerConfig,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    if let Some(dir) = &cfg.journal_dir {
        std::fs::create_dir_all(dir)?;
    }
    let (tx, rx) = sync_channel::<TcpStream>(cfg.queue_depth);
    let rx = Arc::new(Mutex::new(rx));
    let state = Arc::new(ServerState {
        engine,
        preps: Mutex::new(HashMap::new()),
        upload_preps: Mutex::new(HashMap::new()),
        registry: JobRegistry::default(),
        journal_dir: cfg.journal_dir.clone(),
        upload_limits: cfg.upload,
        tiling: cfg.tiling,
        http_limits: cfg.http,
        started: Instant::now(),
        queued: AtomicU64::new(0),
        active: AtomicU64::new(0),
        draining: AtomicBool::new(false),
        counters: Counters::default(),
    });

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..cfg.workers.max(1) {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let read_timeout = cfg.read_timeout;
            handles.push(scope.spawn(move || worker_loop(&rx, &state, read_timeout)));
        }

        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => match tx.try_send(stream) {
                    Ok(()) => {
                        state.queued.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Full(stream)) => {
                        state.counters.rejected_busy.fetch_add(1, Ordering::Relaxed);
                        respond_busy(stream);
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => eprintln!("mpld-server: accept failed: {e}"),
            }
        }

        // Graceful drain: close the queue so workers finish what is
        // queued and return, while the acceptor keeps answering probes
        // (`draining` health, `503` for new work) until they have.
        state.draining.store(true, Ordering::SeqCst);
        drop(tx);
        while handles.iter().any(|h| !h.is_finished()) {
            match listener.accept() {
                Ok((stream, _)) => respond_draining(stream, &state),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        for h in handles {
            let _ = h.join();
        }
    });
    Ok(())
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    state: &Arc<ServerState>,
    read_timeout: Duration,
) {
    loop {
        // Hold the receiver lock only for the dequeue, not the request.
        let stream = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(stream) = stream else { return }; // queue closed: drain done
        state.queued.fetch_sub(1, Ordering::Relaxed);
        state.active.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_read_timeout(Some(read_timeout));
        let _ = stream.set_write_timeout(Some(read_timeout));
        // Panic isolation: an injected (or real) panic inside a request
        // drops that connection but never takes the worker down with it.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(stream, state)
        }));
        state.active.fetch_sub(1, Ordering::Relaxed);
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => eprintln!("mpld-server: request failed: {e}"),
            Err(_) => {
                state
                    .counters
                    .request_panics
                    .fetch_add(1, Ordering::Relaxed);
                eprintln!("mpld-server: request panicked; connection dropped, worker continues");
            }
        }
    }
}

/// The one admission-control response, written straight from the
/// acceptor thread so a saturated pool still answers instantly.
fn respond_busy(mut stream: TcpStream) {
    let _ = stream.write_all(
        b"HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\n\
          Connection: close\r\nContent-Length: 26\r\n\r\n{\"error\":\"queue is full\"}\n",
    );
}

/// Inline responder used by the acceptor while draining: health probes
/// still get real answers, new work gets `503`.
fn respond_draining(stream: TcpStream, state: &ServerState) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut reader = BufReader::new(stream);
    let Ok(req) = http::read_request(&mut reader, &state.http_limits) else {
        return;
    };
    let stream = reader.into_inner();
    let _ = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => respond_json(stream, "200 OK", &health_json(state)),
        ("GET", "/stats") => respond_json(stream, "200 OK", &stats_json(state)),
        _ => respond_json(
            stream,
            "503 Service Unavailable",
            "{\"error\":\"draining\"}",
        ),
    };
}

fn handle_connection(stream: TcpStream, state: &Arc<ServerState>) -> std::io::Result<()> {
    #[cfg(feature = "failpoints")]
    mpld_graph::failpoints::tick("server.worker.request");

    let mut reader = BufReader::new(stream);
    let req = match http::read_request(&mut reader, &state.http_limits) {
        Ok(r) => r,
        Err(HttpError::Io(e)) => return Err(e),
        Err(e) => {
            state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            let status = e.status().unwrap_or("400 Bad Request");
            return respond_json(reader.into_inner(), status, &e.body());
        }
    };
    let stream = reader.into_inner();

    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => respond_json(stream, "200 OK", &health_json(state)),
        ("GET", "/stats") => respond_json(stream, "200 OK", &stats_json(state)),
        ("GET", path) if path.starts_with("/jobs/") => {
            let id = &path["/jobs/".len()..];
            match state.registry.get(id) {
                Some(job) => stream_job(stream, &job),
                None => respond_json(
                    stream,
                    "404 Not Found",
                    &format!("{{\"error\":\"unknown job\",\"id\":{id:?}}}"),
                ),
            }
        }
        ("POST", "/decompose") => handle_decompose(stream, state, &req),
        _ => respond_json(stream, "404 Not Found", "{\"error\":\"unknown route\"}"),
    }
}

fn respond_json(mut stream: TcpStream, status: &str, body: &str) -> std::io::Result<()> {
    let mut body = body.to_string();
    body.push('\n');
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Extracts the token following `"key":` from a flat JSON object —
/// enough for the four-field request body this server accepts.
fn body_field<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let rest = &body[body.find(&pat)? + pat.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.find('"').map(|end| &stripped[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

fn health_json(state: &ServerState) -> String {
    let s = state.engine.stats();
    let status = if state.draining.load(Ordering::SeqCst) {
        "draining"
    } else {
        "ok"
    };
    format!(
        "{{\"status\":\"{status}\",\"uptime_ms\":{},\"queue_depth\":{},\
         \"active_requests\":{},\"routing_entries\":{},\"routing_hits\":{},\
         \"solution_entries\":{}}}",
        state.started.elapsed().as_millis(),
        state.queued.load(Ordering::Relaxed),
        state.active.load(Ordering::Relaxed),
        s.routing.entries,
        s.routing.hits,
        s.solutions_ilp_first.entries + s.solutions_ec_first.entries
    )
}

fn stats_json(state: &ServerState) -> String {
    let s = state.engine.stats();
    let c = &state.counters;
    let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
    format!(
        "{{\"routing\":{},\"solutions_ilp_first\":{},\"solutions_ec_first\":{},\
         \"uptime_ms\":{},\"queue_depth\":{},\"active_requests\":{},\"draining\":{},\
         \"jobs\":{{\"registered\":{},\"started\":{},\"completed\":{},\"failed\":{},\
         \"resumed_units\":{},\"journal_records\":{},\"journal_restarts\":{}}},\
         \"http\":{{\"rejected_busy\":{},\"bad_requests\":{},\"request_panics\":{}}},\
         \"tiled\":{{\"enabled\":{},\"preps\":{},\"tiles\":{},\"boundary_resolves\":{}}},\
         \"store\":{}}}",
        map_stats_json(&s.routing),
        map_stats_json(&s.solutions_ilp_first),
        map_stats_json(&s.solutions_ec_first),
        state.started.elapsed().as_millis(),
        state.queued.load(Ordering::Relaxed),
        state.active.load(Ordering::Relaxed),
        state.draining.load(Ordering::SeqCst),
        state.registry.len(),
        ld(&c.jobs_started),
        ld(&c.jobs_completed),
        ld(&c.jobs_failed),
        ld(&c.resumed_units),
        ld(&c.journal_records),
        ld(&c.journal_restarts),
        ld(&c.rejected_busy),
        ld(&c.bad_requests),
        ld(&c.request_panics),
        state.tiling.is_some(),
        ld(&c.tiled_preps),
        ld(&c.tiles_prepared),
        ld(&c.boundary_resolves),
        store_stats_json(s.store.as_ref()),
    )
}

/// Answers a typed 400 carrying the parse failure's line number (the
/// `MpldError::Parse` contract for untrusted uploads).
fn respond_parse_error(stream: TcpStream, e: &MpldError) -> std::io::Result<()> {
    let (line, reason) = match e {
        MpldError::Parse { line, reason } => (*line, reason.clone()),
        other => (0, other.to_string()),
    };
    respond_json(
        stream,
        "400 Bad Request",
        &format!("{{\"error\":\"parse\",\"line\":{line},\"reason\":{reason:?}}}"),
    )
}

fn handle_decompose(
    stream: TcpStream,
    state: &Arc<ServerState>,
    req: &http::Request,
) -> std::io::Result<()> {
    // Dispatch on the body's first non-whitespace byte: `{` is the JSON
    // circuit request, anything else is a raw layout upload.
    let first = req.body.iter().find(|b| !b.is_ascii_whitespace());
    let prep: Arc<PrepEntry>;
    let seed: u64;
    let time_limit_ms: Option<u64>;
    let explicit_id: Option<String>;
    let kind: &str;
    // Tiled-preparation progress lines buffered on a cache miss; the job
    // that triggered the preparation replays them in its event stream.
    let mut tile_events = Vec::new();
    match first {
        Some(b'{') => {
            let body = String::from_utf8_lossy(&req.body).into_owned();
            let Some(circuit) = body_field(&body, "circuit").map(str::to_string) else {
                return respond_json(
                    stream,
                    "400 Bad Request",
                    "{\"error\":\"missing \\\"circuit\\\"\"}",
                );
            };
            let Some(p) = state.prep_circuit(&circuit, &mut tile_events) else {
                return respond_json(
                    stream,
                    "404 Not Found",
                    &format!("{{\"error\":\"unknown circuit {circuit:?}\"}}"),
                );
            };
            prep = p;
            seed = body_field(&body, "seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_SEED);
            time_limit_ms = body_field(&body, "time_limit_ms").and_then(|v| v.parse().ok());
            explicit_id = body_field(&body, "job_id").map(str::to_string);
            kind = "circuit";
        }
        Some(_) => {
            match state.prep_upload(&req.body, &mut tile_events) {
                Ok(p) => prep = p,
                Err(e) => return respond_parse_error(stream, &e),
            }
            seed = req
                .query_param("seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_SEED);
            time_limit_ms = req
                .query_param("time_limit_ms")
                .and_then(|v| v.parse().ok());
            explicit_id = req.query_param("job_id").map(str::to_string);
            kind = "upload";
        }
        None => {
            return respond_json(stream, "400 Bad Request", "{\"error\":\"empty body\"}");
        }
    }

    let job_id = match explicit_id {
        Some(id) if !valid_job_id(&id) => {
            return respond_json(
                stream,
                "400 Bad Request",
                &format!(
                    "{{\"error\":\"invalid job_id {id:?}: want 1-64 chars of [A-Za-z0-9._-], \
                     not starting with a dot\"}}"
                ),
            );
        }
        Some(id) => id,
        None => derive_job_id(kind, &req.body, seed, time_limit_ms),
    };

    match state.registry.claim(&job_id) {
        Claim::Attach(job) => stream_job(stream, &job),
        Claim::Run(job) => run_job(
            stream,
            state,
            &job_id,
            &job,
            &prep,
            &tile_events,
            seed,
            time_limit_ms,
        ),
    }
}

/// Marks a job failed-and-forgotten if its runner unwinds (panic or
/// early return) before completing it, so attached followers terminate
/// and a retry re-runs instead of replaying a half-finished log.
struct JobGuard<'a> {
    state: &'a ServerState,
    id: &'a str,
    job: &'a Arc<Job>,
    completed: bool,
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.job
                .append("{\"event\":\"error\",\"message\":\"job aborted\"}");
            self.job.finish(true);
            self.state.registry.remove(self.id);
            self.state
                .counters
                .jobs_failed
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Loads a resumable checkpoint for `job_id`, discarding (and counting)
/// journals whose header does not match the present request.
fn load_resume(
    state: &ServerState,
    path: &Path,
    prep: &PreparedLayout,
    k: u8,
    alpha: f64,
) -> (Option<Checkpoint>, bool) {
    match Checkpoint::load(path) {
        Ok(Some(cp)) if cp.matches(&prep.name, k, alpha, prep.units.len()) => (Some(cp), false),
        Ok(None) => (None, false),
        Ok(Some(_)) | Err(_) => {
            // Foreign or unreadable journal: never silently reuse it —
            // delete and restart this job from scratch.
            let _ = std::fs::remove_file(path);
            state
                .counters
                .journal_restarts
                .fetch_add(1, Ordering::Relaxed);
            (None, true)
        }
    }
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn run_job(
    mut stream: TcpStream,
    state: &Arc<ServerState>,
    job_id: &str,
    job: &Arc<Job>,
    entry: &Arc<PrepEntry>,
    tile_events: &[String],
    seed: u64,
    time_limit_ms: Option<u64>,
) -> std::io::Result<()> {
    state.counters.jobs_started.fetch_add(1, Ordering::Relaxed);
    let prep = &entry.prep;
    let params = state.engine.framework().params;
    let mut guard = JobGuard {
        state,
        id: job_id,
        job,
        completed: false,
    };

    let journal_path = state.journal_path(job_id);
    let (resume, restarted) = match &journal_path {
        Some(path) => load_resume(state, path, prep, params.k, params.alpha),
        None => (None, false),
    };
    let journal = match &journal_path {
        Some(path) => {
            let header = CheckpointHeader {
                layout: prep.name.clone(),
                k: params.k,
                alpha: params.alpha,
                units: prep.units.len(),
            };
            match JournalWriter::append(path, &header) {
                Ok(w) => Some(w),
                Err(e) => {
                    eprintln!("mpld-server: journal {} disabled: {e}", path.display());
                    None
                }
            }
        }
        None => None,
    };

    // Streaming NDJSON: no Content-Length, the body ends when the
    // connection closes (Connection: close).
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )?;

    let mut stream_err: Option<std::io::Error> = None;
    // Dual-write: every event goes to the job log (for reattaching
    // followers) first, then to this connection's own stream. A dead
    // client never aborts the solve — the job finishes and stays
    // attachable.
    let mut emit = |line: &str| {
        job.append(line);
        #[cfg(feature = "failpoints")]
        if stream_err.is_none() && mpld_graph::failpoints::fire("server.stream.drop") {
            stream_err = Some(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "failpoint server.stream.drop: injected mid-stream disconnect",
            ));
        }
        if stream_err.is_none() {
            if let Err(e) = writeln!(stream, "{line}").and_then(|()| stream.flush()) {
                stream_err = Some(e);
            }
        }
    };

    emit(&format!(
        "{{\"event\":\"job\",\"id\":\"{job_id}\",\"journal\":{},\"restarted\":{restarted}}}",
        journal.is_some()
    ));
    for line in tile_events {
        emit(line);
    }

    let policy = BudgetPolicy {
        total: time_limit_ms.map(Duration::from_millis),
        ..BudgetPolicy::unlimited()
    };
    let mut session = Session::with_policy(seed, policy);
    session.recovery = Recovery {
        resume: resume.as_ref(),
        journal: journal.as_ref(),
    };

    let result = {
        let mut on_event = |e: Progress| {
            let line = match e {
                Progress::Routed {
                    units,
                    matched,
                    colorgnn,
                    routing_memo_hits,
                } => format!(
                    "{{\"event\":\"routed\",\"units\":{units},\"matched\":{matched},\
                     \"colorgnn\":{colorgnn},\"routing_memo_hits\":{routing_memo_hits}}}"
                ),
                Progress::Unit {
                    index,
                    engine,
                    certainty,
                    cached,
                } => format!(
                    "{{\"event\":\"unit\",\"index\":{index},\"engine\":\"{engine:?}\",\
                     \"certainty\":\"{certainty:?}\",\"cached\":{cached}}}"
                ),
            };
            emit(&line);
        };
        state
            .engine
            .decompose_with_progress(prep, &mut session, &mut on_event)
    };

    match result {
        Ok(r) => {
            let mut summary = RunSummary::from_result(&prep.name, &r, params.alpha, 1, Some(seed));
            if let Some(t) = &entry.tiled {
                // Independent Eq. 1 re-audit of every unit that spans a
                // tile boundary, against this solve's reported costs.
                let (units, clean) = audit_boundary_units(prep, &r, &t.boundary_units, params.k);
                emit(&format!(
                    "{{\"event\":\"boundary_audit\",\"units\":{units},\"clean\":{clean}}}"
                ));
                summary.tiled = Some(TiledRunSummary {
                    tiles: t.stats.tiles_x * t.stats.tiles_y,
                    boundary_resolves: t.stats.boundary_resolves,
                });
            }
            emit(&format!(
                "{{\"event\":\"done\",\"job\":\"{job_id}\",\"summary\":{}}}",
                summary.to_json()
            ));
            guard.completed = true;
            job.finish(false);
            let c = &state.counters;
            c.jobs_completed.fetch_add(1, Ordering::Relaxed);
            c.resumed_units
                .fetch_add(r.resumed_units as u64, Ordering::Relaxed);
            if journal.is_some() {
                if let Some(path) = &journal_path {
                    // New records this run = journaled units minus the
                    // ones that were restored rather than re-solved.
                    if let Ok(Some(cp)) = Checkpoint::load(path) {
                        let new = cp.len().saturating_sub(r.resumed_units) as u64;
                        c.journal_records.fetch_add(new, Ordering::Relaxed);
                    }
                }
            }
        }
        Err(e) => {
            emit(&format!(
                "{{\"event\":\"error\",\"message\":{:?}}}",
                e.to_string()
            ));
            guard.completed = true;
            job.finish(true);
            state.registry.remove(job_id);
            state.counters.jobs_failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    match stream_err {
        Some(e) => Err(e),
        None => stream.flush(),
    }
}

/// Replays a job's NDJSON event log from the start over `stream`, then
/// follows live appends until the job finishes. The runner's own
/// connection never comes here — only reattaching followers.
fn stream_job(mut stream: TcpStream, job: &Arc<Job>) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )?;
    let mut from = 0usize;
    loop {
        let (lines, done) = job.wait_events(from, Duration::from_millis(250));
        for line in &lines {
            writeln!(stream, "{line}")?;
        }
        if !lines.is_empty() {
            stream.flush()?;
        }
        from += lines.len();
        if done && lines.is_empty() {
            return stream.flush();
        }
    }
}

fn map_stats_json(s: &mpld::ShardedMapStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"entries\":{},\"evictions\":{},\"high_water\":{}}}",
        s.hits, s.misses, s.entries, s.evictions, s.high_water
    )
}

/// The persistent-store section of `/stats`: `null` for an in-memory
/// engine, else the load report + live writer counters.
fn store_stats_json(s: Option<&mpld::EngineStoreStats>) -> String {
    let Some(s) = s else {
        return "null".to_string();
    };
    format!(
        "{{\"loaded_solves\":{},\"skipped_corrupt\":{},\"skipped_audit\":{},\
         \"superseded\":{},\"orphaned\":{},\"rekeyed\":{},\"torn_tail\":{},\
         \"lib_loaded\":{},\"load_ms\":{},\"appended\":{},\"dropped\":{},\
         \"flushes\":{},\"io_errors\":{},\"entries\":{}}}",
        s.loaded_solves,
        s.skipped_corrupt,
        s.skipped_audit,
        s.superseded,
        s.orphaned,
        s.rekeyed,
        s.torn_tail,
        s.lib_loaded,
        s.load_ms,
        s.appended,
        s.dropped,
        s.flushes,
        s.io_errors,
        s.entries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_fields_parse() {
        let b = r#"{"circuit":"C432","seed":7,"time_limit_ms":500,"job_id":"a.b-c"}"#;
        assert_eq!(body_field(b, "circuit"), Some("C432"));
        assert_eq!(body_field(b, "seed"), Some("7"));
        assert_eq!(body_field(b, "time_limit_ms"), Some("500"));
        assert_eq!(body_field(b, "job_id"), Some("a.b-c"));
        assert_eq!(body_field(b, "missing"), None);
        // Whitespace-tolerant.
        let b = r#"{ "circuit" : "C499" , "seed" : 12 }"#;
        assert_eq!(body_field(b, "circuit"), Some("C499"));
        assert_eq!(body_field(b, "seed"), Some("12"));
    }

    #[test]
    fn default_config_is_sane() {
        let c = ServerConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_depth >= 1);
        assert!(c.journal_dir.is_none());
        assert_eq!(c.upload, ReadLimits::UNTRUSTED);
    }
}
