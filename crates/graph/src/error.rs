//! The workspace-wide typed error hierarchy.
//!
//! Every fallible decomposition API returns [`MpldError`]. Budget
//! exhaustion is deliberately *not* an error variant: engines return their
//! best-so-far incumbent tagged
//! [`Certainty::BudgetExhausted`](crate::Certainty::BudgetExhausted)
//! instead, so callers always get a valid coloring. Errors are reserved for
//! inputs an engine cannot produce any valid answer for (malformed layout
//! text, unsupported mask counts, mismatched coloring lengths) and for
//! explicit cancellation before any work could be done.

use std::fmt;

/// Typed error for every fallible decomposition API in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpldError {
    /// A layout file (or other textual input) could not be parsed.
    Parse {
        /// 1-based line number of the first offending line (0 when the
        /// failure is not attributable to a line, e.g. a truncated file).
        line: usize,
        /// Human-readable description of what went wrong.
        reason: String,
    },
    /// A coloring's length does not match the graph it is applied to.
    ColoringMismatch {
        /// `graph.num_nodes()`.
        expected: usize,
        /// The coloring's actual length.
        got: usize,
    },
    /// An engine does not support the requested parameters.
    Unsupported {
        /// The engine's stable name ("ILP", "EC", ...).
        engine: &'static str,
        /// Why the request cannot be served.
        reason: String,
    },
    /// An engine could not produce any valid coloring for the instance.
    Infeasible {
        /// The engine's stable name.
        engine: &'static str,
        /// Why no solution exists / was found.
        reason: String,
    },
    /// The solve was cancelled before any incumbent existed.
    Cancelled,
    /// A per-unit solve panicked and was quarantined by the framework.
    ///
    /// The unit is reported with a greedy-fallback coloring tagged
    /// [`Certainty::Degraded`](crate::Certainty::Degraded); this variant
    /// records which unit failed and the panic payload for diagnostics.
    Panicked {
        /// Index of the quarantined unit within the prepared layout.
        unit: usize,
        /// Stringified panic payload (`&str`/`String` payloads verbatim,
        /// otherwise a placeholder).
        payload: String,
    },
    /// Layout-graph construction failed (invalid edges, etc.).
    Graph(String),
    /// Underlying I/O failure (message only, so the type stays `Eq`).
    Io(String),
}

impl fmt::Display for MpldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpldError::Parse { line, reason } => {
                if *line == 0 {
                    write!(f, "parse error: {reason}")
                } else {
                    write!(f, "parse error at line {line}: {reason}")
                }
            }
            MpldError::ColoringMismatch { expected, got } => {
                write!(
                    f,
                    "coloring has {got} entries but the graph has {expected} nodes"
                )
            }
            MpldError::Unsupported { engine, reason } => {
                write!(f, "{engine}: unsupported request: {reason}")
            }
            MpldError::Infeasible { engine, reason } => {
                write!(f, "{engine}: no valid coloring: {reason}")
            }
            MpldError::Cancelled => write!(f, "solve cancelled"),
            MpldError::Panicked { unit, payload } => {
                write!(f, "unit {unit} panicked and was quarantined: {payload}")
            }
            MpldError::Graph(e) => write!(f, "graph error: {e}"),
            MpldError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for MpldError {}

impl From<crate::GraphError> for MpldError {
    fn from(e: crate::GraphError) -> Self {
        MpldError::Graph(e.to_string())
    }
}

impl From<std::io::Error> for MpldError {
    fn from(e: std::io::Error) -> Self {
        MpldError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = MpldError::Parse {
            line: 7,
            reason: "bad rect".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 7: bad rect");
        let e = MpldError::Parse {
            line: 0,
            reason: "truncated".into(),
        };
        assert_eq!(e.to_string(), "parse error: truncated");
        let e = MpldError::ColoringMismatch {
            expected: 5,
            got: 3,
        };
        assert!(e.to_string().contains("3 entries"));
        assert!(e.to_string().contains("5 nodes"));
        assert_eq!(MpldError::Cancelled.to_string(), "solve cancelled");
        let e = MpldError::Panicked {
            unit: 4,
            payload: "boom".into(),
        };
        assert_eq!(e.to_string(), "unit 4 panicked and was quarantined: boom");
    }

    #[test]
    fn graph_error_converts() {
        let g = crate::LayoutGraph::homogeneous(1, vec![(0, 0)]);
        let err: MpldError = g.unwrap_err().into();
        assert!(matches!(err, MpldError::Graph(_)));
    }
}
