#!/bin/bash
set -x
cd /root/repo
MPLD_EPOCHS=15 cargo run --release -p mpld-bench --bin main_results > results/main_results.txt 2> results/main_results.log || echo "FAILED: main_results" >> results/failures.txt
MPLD_EPOCHS=25 cargo run --release -p mpld-bench --bin table3 > results/table3.txt 2> results/table3.log || echo "FAILED: table3" >> results/failures.txt
MPLD_EPOCHS=40 cargo run --release -p mpld-bench --bin table6 > results/table6.txt 2> results/table6.log || echo "FAILED: table6" >> results/failures.txt
for bin in fig3 fig1 table1 table2 ablations; do
  cargo run --release -p mpld-bench --bin $bin > results/$bin.txt 2> results/$bin.log || echo "FAILED: $bin" >> results/failures.txt
done
echo ALL_DONE > results/final.marker
