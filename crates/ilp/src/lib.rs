#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
//! Exact (ILP-equivalent) decomposers for MPLD.
//!
//! The paper's optimal baseline solves the integer linear program of
//! Eq. (3) with a commercial solver. This crate provides two exact engines
//! built from scratch:
//!
//! - [`IlpDecomposer`] — a specialized branch-and-bound over node colors
//!   with incremental cost accounting and color-symmetry breaking. This is
//!   the default "ILP" engine used throughout the workspace: provably
//!   optimal for the objective of Eq. (1).
//! - [`bip`] — a generic 0-1 integer program solver plus [`encode`], the
//!   faithful TPLD encoding of Eq. (3). Slower, used to cross-validate the
//!   specialized engine and to demonstrate the exact paper formulation.
//!
//! Both engines agree on the optimal cost (tested exhaustively against
//! [`brute_force`] on small graphs).
//!
//! # Example
//!
//! ```
//! use mpld_graph::{Decomposer, DecomposeParams, LayoutGraph};
//! use mpld_ilp::IlpDecomposer;
//!
//! // K4 needs 4 colors; at k = 3 the optimum has exactly one conflict.
//! let g = LayoutGraph::homogeneous(
//!     4,
//!     vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
//! ).unwrap();
//! let d = IlpDecomposer::new().decompose_unbounded(&g, &DecomposeParams::tpl());
//! assert_eq!(d.cost.conflicts, 1);
//! ```

pub mod bip;
mod colorbb;
pub mod encode;

pub use colorbb::IlpDecomposer;

use mpld_graph::{DecomposeParams, Decomposition, LayoutGraph};

/// Exhaustive `k^n` search for the optimal decomposition.
///
/// Only usable for tiny graphs (`n <= ~12`); exists to validate the exact
/// engines in tests and to certify graph-library entries.
///
/// # Panics
///
/// Panics if `graph.num_nodes() > 16` (the search would not terminate in
/// reasonable time).
pub fn brute_force(graph: &LayoutGraph, params: &DecomposeParams) -> Decomposition {
    let n = graph.num_nodes();
    assert!(n <= 16, "brute force is limited to 16 nodes");
    let k = params.k;
    let mut best: Option<Decomposition> = None;
    let mut coloring = vec![0u8; n];
    loop {
        let cost = graph.evaluate(&coloring, params.alpha);
        let better = match &best {
            None => true,
            Some(b) => cost.better_than(&b.cost, params.alpha),
        };
        if better {
            best = Some(Decomposition {
                coloring: coloring.clone(),
                cost,
                certainty: mpld_graph::Certainty::Certified,
            });
        }
        // Odometer increment over base-k strings.
        let mut i = 0;
        loop {
            if i == n {
                #[allow(clippy::expect_used)] // the zero coloring was evaluated first
                return best.expect("at least one coloring evaluated");
            }
            coloring[i] += 1;
            if coloring[i] < k {
                break;
            }
            coloring[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_force_triangle_is_free() {
        let g = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let d = brute_force(&g, &DecomposeParams::tpl());
        assert_eq!(d.cost.conflicts, 0);
    }

    #[test]
    fn brute_force_k4_has_one_conflict() {
        let g = LayoutGraph::homogeneous(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .unwrap();
        let d = brute_force(&g, &DecomposeParams::tpl());
        assert_eq!(d.cost.conflicts, 1);
        // At k = 4 the conflict disappears.
        let d = brute_force(&g, &DecomposeParams::qpl());
        assert_eq!(d.cost.conflicts, 0);
    }

    #[test]
    fn brute_force_prefers_stitch_over_conflict() {
        // Feature A = {0, 1} with a stitch; 0 conflicts with B, 1 with C and
        // D; B, C, D mutually conflict. Without using the stitch A would
        // clash somewhere; with it the cost is a single stitch (0.1).
        let g = mpld_graph::LayoutGraph::new(
            vec![0, 0, 1, 2, 3],
            vec![
                (0, 2),
                (1, 3),
                (1, 4),
                (2, 3),
                (2, 4),
                (3, 4),
                (0, 3),
                (0, 4),
                (1, 2),
            ],
            vec![(0, 1)],
        )
        .unwrap();
        let d = brute_force(&g, &DecomposeParams::tpl());
        // B, C, D form a triangle using all three masks; both subfeatures of
        // A conflict with everything, so one conflict is unavoidable, and a
        // stitch cannot help. This asserts exact accounting.
        assert_eq!(d.cost.conflicts, 1);
        assert_eq!(d.cost.stitches, 0);
    }
}
