//! Benchmark layouts and layout → graph construction for MPLD.
//!
//! Three pieces:
//!
//! - [`iscas_suite`] — the 15 deterministic synthetic circuits standing in
//!   for the paper's scaled ISCAS benchmarks (see DESIGN.md for the
//!   substitution rationale);
//! - [`Layout::to_conflict_graph`] — features → homogeneous conflict graph
//!   at the minimum coloring distance, via the grid spatial index;
//! - [`insert_stitch_candidates`] — projection-based stitch candidate
//!   generation per simplified component, producing the heterogeneous
//!   graph the decomposers consume.
//!
//! # Example
//!
//! ```
//! use mpld_layout::circuit_by_name;
//!
//! let layout = circuit_by_name("C432").expect("known circuit").generate();
//! let graph = layout.to_conflict_graph();
//! assert_eq!(graph.num_nodes(), layout.features.len());
//! assert!(!graph.conflict_edges().is_empty());
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod circuits;
mod generator;
mod io;
mod stitch;

pub use circuits::{circuit_by_name, iscas_suite, Circuit};
pub use generator::{generate_layout, generate_layout_streaming, GeneratorParams};
pub use io::{
    read_layout, read_layout_limited, read_layout_streaming, write_layout, LayoutHeader,
    LayoutWriter, ParseLayoutError, ReadLimits,
};
pub use stitch::{
    insert_stitch_candidates, insert_stitch_candidates_masked, StitchedComponent,
    MAX_STITCHES_PER_FEATURE,
};

use mpld_geometry::{Feature, GridIndex, Rect};
use mpld_graph::LayoutGraph;

/// A routed-layer layout: named geometry plus its coloring distance.
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    /// Circuit name ("C432", ...).
    pub name: String,
    /// Minimum coloring distance in nanometres.
    pub d: i64,
    /// Polygonal features with dense ids `0..len`.
    pub features: Vec<Feature>,
}

impl Layout {
    /// Builds the homogeneous conflict graph: one node per feature, an
    /// edge per pair closer than `d`.
    pub fn to_conflict_graph(&self) -> LayoutGraph {
        let index = GridIndex::build(&self.features, self.d);
        let pairs = index.conflict_pairs(&self.features, self.d);
        let edges = pairs
            .into_iter()
            .map(|(a, b)| (a as u32, b as u32))
            .collect();
        #[allow(clippy::expect_used)] // the grid index yields valid, deduplicated pairs
        LayoutGraph::homogeneous(self.features.len(), edges)
            .expect("generated layouts produce valid conflict graphs")
    }
}

/// Squared gap distance between two rectangles (convenience alias used by
/// stitch insertion).
pub(crate) fn rect_distance_sq(a: &Rect, b: &Rect) -> i64 {
    mpld_geometry::gap_distance_sq(a, b)
}

/// 1-D interval gap, crate-internal helper for projection computations.
pub(crate) fn axis_gap_pub(al: i64, ah: i64, bl: i64, bh: i64) -> i64 {
    if bh < al {
        al - bh
    } else if ah < bl {
        bl - ah
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_graph_nodes_match_features() {
        let layout = circuit_by_name("C432").expect("exists").generate();
        let g = layout.to_conflict_graph();
        assert_eq!(g.num_nodes(), layout.features.len());
        // Sanity: the layout is neither empty nor fully connected.
        let comps = g.connected_components();
        assert!(comps.len() > 1);
        assert!(comps.iter().any(|c| c.len() > 2));
    }

    #[test]
    fn all_circuits_generate_nonempty_graphs() {
        for c in iscas_suite().iter().take(3) {
            let layout = c.generate();
            assert!(!layout.features.is_empty(), "{} empty", c.name);
            let g = layout.to_conflict_graph();
            assert!(
                !g.conflict_edges().is_empty(),
                "{} has no conflicts",
                c.name
            );
        }
    }
}
