//! Property-based tests for the exact-cover engine: validity, bounded
//! suboptimality against the exact engine, and DLX state restoration.

use mpld_ec::dlx::Dlx;
use mpld_ec::EcDecomposer;
use mpld_graph::{DecomposeParams, Decomposer, LayoutGraph};
use mpld_ilp::IlpDecomposer;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = LayoutGraph> {
    (3usize..10, 0u64..100_000).prop_map(|(n, seed)| {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(0.45) {
                    edges.push((u, v));
                }
            }
        }
        LayoutGraph::homogeneous(n, edges).expect("valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ec_is_valid_and_never_beats_ilp(g in arb_graph()) {
        let p = DecomposeParams::tpl();
        let (ec, certified) = EcDecomposer::new().decompose_certified(&g, &p, &mpld_graph::Budget::unlimited()).unwrap();
        prop_assert_eq!(ec.coloring.len(), g.num_nodes());
        prop_assert!(ec.coloring.iter().all(|&c| c < p.k));
        prop_assert_eq!(ec.cost, g.evaluate(&ec.coloring, 0.1));
        let opt = IlpDecomposer::new().decompose_unbounded(&g, &p);
        prop_assert!(ec.cost.value(0.1) >= opt.cost.value(0.1) - 1e-9);
        // The certificate is the hard quality invariant: a certified
        // result must be exactly optimal. (Uncertified results on dense
        // random graphs — far denser than simplified layout units — may
        // legitimately miss by more than one conflict.)
        if certified {
            prop_assert!(
                (ec.cost.value(0.1) - opt.cost.value(0.1)).abs() < 1e-9,
                "certified EC {} is not optimal {}", ec.cost, opt.cost
            );
        }
    }

    #[test]
    fn ec_finds_zero_cost_whenever_one_exists(g in arb_graph()) {
        let p = DecomposeParams::tpl();
        let opt = IlpDecomposer::new().decompose_unbounded(&g, &p);
        if opt.cost.conflicts == 0 && opt.cost.stitches == 0 {
            let ec = EcDecomposer::new().decompose_unbounded(&g, &p);
            prop_assert_eq!(ec.cost.conflicts, 0, "missed a conflict-free cover");
        }
    }

    #[test]
    fn dlx_search_is_repeatable(rows in prop::collection::vec(
        prop::collection::vec(0usize..6, 1..4), 1..12)
    ) {
        // cover/uncover must restore the matrix exactly: two searches on
        // the same instance give identical results.
        let mut m = Dlx::new(6, 0);
        for (i, row) in rows.iter().enumerate() {
            let mut cols = row.clone();
            cols.sort_unstable();
            cols.dedup();
            m.add_row(&cols, i as u64);
        }
        let a = m.solve_min_cost(None);
        let b = m.solve_min_cost(None);
        prop_assert_eq!(a, b);
    }
}
