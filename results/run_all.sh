#!/bin/bash
# Regenerates every table and figure of the paper's evaluation.
# Prefer run_final.sh, which trains each fold once (main_results) instead
# of retraining per table; this script runs every standalone binary.
set -x
cd /root/repo
for bin in fig3 fig1 table1 table2 table3 table4 table5 table6 table7 fig9 fig10 ablations; do
  cargo run --release -p mpld-bench --bin $bin > results/$bin.txt 2> results/$bin.log || echo "FAILED: $bin" >> results/failures.txt
done
echo ALL_DONE > results/done.marker
