//! Plain-text layout interchange format.
//!
//! Real MPLD flows read GDSII/OASIS; this workspace uses a minimal
//! line-oriented text format so users can bring their own layouts without
//! a binary parser:
//!
//! ```text
//! # comments start with '#'
//! layout C432 d=120
//! feature 0
//! rect 0 0 100 30
//! rect 80 30 110 130
//! feature 1
//! rect 200 0 400 30
//! end
//! ```
//!
//! Feature ids must be dense and ascending from 0; every feature needs at
//! least one `rect`. [`write_layout`] and [`read_layout`] round-trip
//! exactly (property-tested).

use crate::Layout;
use mpld_geometry::{Feature, Rect};
use std::fmt;
use std::io::{BufRead, Write};

/// Hard caps for parsing an untrusted layout body (see
/// [`read_layout_limited`]). Every cap is enforced *while* reading, so a
/// hostile input can never force an unbounded allocation: line bytes are
/// bounded before a line is materialized, and rect/feature counts are
/// checked as they accumulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadLimits {
    /// Longest accepted line, in bytes (longer lines are a typed error,
    /// not an unbounded read).
    pub max_line_bytes: usize,
    /// Total rectangles accepted across all features (`poly` lines count
    /// their decomposed rectangles).
    pub max_rects: usize,
    /// Total features accepted.
    pub max_features: usize,
}

impl ReadLimits {
    /// The caps a network-facing endpoint should apply to an upload.
    pub const UNTRUSTED: ReadLimits = ReadLimits {
        max_line_bytes: 4096,
        max_rects: 200_000,
        max_features: 100_000,
    };

    /// No caps (trusted local files; the behavior of [`read_layout`]).
    pub fn unlimited() -> Self {
        ReadLimits {
            max_line_bytes: usize::MAX,
            max_rects: usize::MAX,
            max_features: usize::MAX,
        }
    }
}

/// Error parsing the text layout format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseLayoutError {
    /// The `layout <name> d=<nm>` header is missing or malformed.
    MissingHeader,
    /// A line could not be parsed.
    BadLine { line: usize, content: String },
    /// Feature ids must be dense and ascending from zero.
    BadFeatureId {
        line: usize,
        expected: u32,
        got: u32,
    },
    /// A `rect` appeared before any `feature`.
    RectOutsideFeature { line: usize },
    /// A feature had no rectangles.
    EmptyFeature { id: u32 },
    /// Missing the final `end` line.
    MissingEnd,
    /// A [`ReadLimits`] cap was exceeded (untrusted uploads).
    LimitExceeded {
        line: usize,
        what: &'static str,
        limit: usize,
    },
    /// Underlying I/O failure (message only, so the type stays `Eq`).
    Io(String),
}

impl fmt::Display for ParseLayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseLayoutError::MissingHeader => {
                write!(f, "missing 'layout <name> d=<nm>' header")
            }
            ParseLayoutError::BadLine { line, content } => {
                write!(f, "cannot parse line {line}: {content:?}")
            }
            ParseLayoutError::BadFeatureId {
                line,
                expected,
                got,
            } => {
                write!(f, "line {line}: expected feature id {expected}, got {got}")
            }
            ParseLayoutError::RectOutsideFeature { line } => {
                write!(f, "line {line}: rect before any feature")
            }
            ParseLayoutError::EmptyFeature { id } => {
                write!(f, "feature {id} has no rectangles")
            }
            ParseLayoutError::MissingEnd => write!(f, "missing final 'end' line"),
            ParseLayoutError::LimitExceeded { line, what, limit } => {
                write!(f, "line {line}: {what} exceeds the limit of {limit}")
            }
            ParseLayoutError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ParseLayoutError {}

impl From<std::io::Error> for ParseLayoutError {
    fn from(e: std::io::Error) -> Self {
        ParseLayoutError::Io(e.to_string())
    }
}

impl From<ParseLayoutError> for mpld_graph::MpldError {
    /// Maps parse failures into the workspace error hierarchy, preserving
    /// the offending line number where one exists (`line == 0` marks
    /// failures not attributable to a line, e.g. a truncated file).
    fn from(e: ParseLayoutError) -> Self {
        let line = match &e {
            ParseLayoutError::BadLine { line, .. }
            | ParseLayoutError::BadFeatureId { line, .. }
            | ParseLayoutError::RectOutsideFeature { line }
            | ParseLayoutError::LimitExceeded { line, .. } => *line,
            _ => 0,
        };
        match e {
            ParseLayoutError::Io(msg) => mpld_graph::MpldError::Io(msg),
            other => mpld_graph::MpldError::Parse {
                line,
                reason: other.to_string(),
            },
        }
    }
}

/// Reads a layout from the text format.
///
/// # Errors
///
/// Returns a [`ParseLayoutError`] describing the first offending line.
///
/// # Example
///
/// ```
/// use mpld_layout::read_layout;
/// let text = "layout tiny d=120\nfeature 0\nrect 0 0 100 30\nend\n";
/// let layout = read_layout(text.as_bytes())?;
/// assert_eq!(layout.name, "tiny");
/// assert_eq!(layout.features.len(), 1);
/// # Ok::<(), mpld_layout::ParseLayoutError>(())
/// ```
pub fn read_layout<R: BufRead>(reader: R) -> Result<Layout, ParseLayoutError> {
    read_layout_limited(reader, &ReadLimits::unlimited())
}

/// [`read_layout`] with hard caps, for untrusted uploads: line length is
/// bounded *before* a line is materialized (a newline-free flood is
/// rejected after `max_line_bytes`, never buffered whole), and rect and
/// feature counts are checked as they accumulate, so peak memory is
/// `O(caps)` regardless of the input.
///
/// # Errors
///
/// [`ParseLayoutError::LimitExceeded`] when a cap is hit, otherwise as
/// [`read_layout`].
pub fn read_layout_limited<R: BufRead>(
    reader: R,
    limits: &ReadLimits,
) -> Result<Layout, ParseLayoutError> {
    let mut features: Vec<Feature> = Vec::new();
    let header = read_layout_streaming(reader, limits, |f| {
        features.push(f);
        Ok(())
    })?;
    Ok(Layout {
        name: header.name,
        d: header.d,
        features,
    })
}

/// The `layout <name> d=<nm>` header of a streamed layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutHeader {
    pub name: String,
    pub d: i64,
}

/// Streaming core of [`read_layout_limited`]: each completed feature is
/// handed to `sink` and dropped, so peak memory is one feature (plus the
/// bounded line buffer) regardless of the layout size. All caps, error
/// cases, and line attribution are identical to [`read_layout_limited`],
/// which is implemented on top of this by collecting into a `Vec`.
///
/// # Errors
///
/// As [`read_layout_limited`]; additionally propagates the first error the
/// sink returns (parsing stops immediately).
pub fn read_layout_streaming<R: BufRead, F>(
    mut reader: R,
    limits: &ReadLimits,
    mut sink: F,
) -> Result<LayoutHeader, ParseLayoutError>
where
    F: FnMut(Feature) -> Result<(), ParseLayoutError>,
{
    let mut name: Option<(String, i64)> = None;
    let mut emitted = 0usize;
    let mut current: Option<(u32, Vec<Rect>)> = None;
    let mut ended = false;
    let mut total_rects = 0usize;

    let mut flush = |current: &mut Option<(u32, Vec<Rect>)>,
                     emitted: &mut usize|
     -> Result<(), ParseLayoutError> {
        if let Some((id, rects)) = current.take() {
            if rects.is_empty() {
                return Err(ParseLayoutError::EmptyFeature { id });
            }
            *emitted += 1;
            sink(Feature::new(id, rects))?;
        }
        Ok(())
    };

    let mut buf: Vec<u8> = Vec::new();
    let mut lineno = 0usize;
    loop {
        buf.clear();
        // Read at most one byte past the cap: if no newline arrived by
        // then the line is over-long and the input is rejected without
        // ever buffering the rest.
        let cap = limits.max_line_bytes.saturating_add(1) as u64;
        let n = std::io::Read::take(&mut reader, cap).read_until(b'\n', &mut buf)?;
        if n == 0 {
            break;
        }
        lineno += 1;
        if buf.len() > limits.max_line_bytes && !buf.ends_with(b"\n") {
            return Err(ParseLayoutError::LimitExceeded {
                line: lineno,
                what: "line length in bytes",
                limit: limits.max_line_bytes,
            });
        }
        // Invalid UTF-8 turns into replacement characters and fails the
        // token parse below as a typed BadLine, never a panic.
        let line = String::from_utf8_lossy(&buf);
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if ended {
            return Err(ParseLayoutError::BadLine {
                line: lineno,
                content: trimmed.into(),
            });
        }
        let mut tokens = trimmed.split_whitespace();
        match tokens.next() {
            Some("layout") => {
                let n = tokens.next().ok_or(ParseLayoutError::MissingHeader)?;
                let d = tokens
                    .next()
                    .and_then(|t| t.strip_prefix("d="))
                    .and_then(|t| t.parse::<i64>().ok())
                    .filter(|&d| d > 0)
                    .ok_or(ParseLayoutError::MissingHeader)?;
                name = Some((n.to_string(), d));
            }
            Some("feature") => {
                if name.is_none() {
                    return Err(ParseLayoutError::MissingHeader);
                }
                flush(&mut current, &mut emitted)?;
                let id: u32 = tokens.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                    ParseLayoutError::BadLine {
                        line: lineno,
                        content: trimmed.into(),
                    }
                })?;
                let expected = emitted as u32;
                if id != expected {
                    return Err(ParseLayoutError::BadFeatureId {
                        line: lineno,
                        expected,
                        got: id,
                    });
                }
                if emitted >= limits.max_features {
                    return Err(ParseLayoutError::LimitExceeded {
                        line: lineno,
                        what: "feature count",
                        limit: limits.max_features,
                    });
                }
                current = Some((id, Vec::new()));
            }
            Some("rect") => {
                let Some((_, rects)) = current.as_mut() else {
                    return Err(ParseLayoutError::RectOutsideFeature { line: lineno });
                };
                let coords: Vec<i64> = tokens.filter_map(|t| t.parse().ok()).collect();
                if coords.len() != 4 {
                    return Err(ParseLayoutError::BadLine {
                        line: lineno,
                        content: trimmed.into(),
                    });
                }
                total_rects += 1;
                if total_rects > limits.max_rects {
                    return Err(ParseLayoutError::LimitExceeded {
                        line: lineno,
                        what: "rect count",
                        limit: limits.max_rects,
                    });
                }
                rects.push(Rect::new(coords[0], coords[1], coords[2], coords[3]));
            }
            Some("poly") => {
                // Rectilinear polygon boundary: x1 y1 x2 y2 ...; decomposed
                // into rectangles on the spot.
                let Some((_, rects)) = current.as_mut() else {
                    return Err(ParseLayoutError::RectOutsideFeature { line: lineno });
                };
                let coords: Vec<i64> = tokens.filter_map(|t| t.parse().ok()).collect();
                if coords.len() < 8 || !coords.len().is_multiple_of(2) {
                    return Err(ParseLayoutError::BadLine {
                        line: lineno,
                        content: trimmed.into(),
                    });
                }
                let points: Vec<(i64, i64)> = coords.chunks(2).map(|c| (c[0], c[1])).collect();
                let poly =
                    mpld_geometry::Polygon::new(points).map_err(|_| ParseLayoutError::BadLine {
                        line: lineno,
                        content: trimmed.into(),
                    })?;
                let decomposed = poly.to_rects().map_err(|_| ParseLayoutError::BadLine {
                    line: lineno,
                    content: trimmed.into(),
                })?;
                total_rects += decomposed.len();
                if total_rects > limits.max_rects {
                    return Err(ParseLayoutError::LimitExceeded {
                        line: lineno,
                        what: "rect count",
                        limit: limits.max_rects,
                    });
                }
                rects.extend(decomposed);
            }
            Some("end") => {
                flush(&mut current, &mut emitted)?;
                ended = true;
            }
            _ => {
                return Err(ParseLayoutError::BadLine {
                    line: lineno,
                    content: trimmed.into(),
                })
            }
        }
    }
    if !ended {
        return Err(ParseLayoutError::MissingEnd);
    }
    let (name, d) = name.ok_or(ParseLayoutError::MissingHeader)?;
    Ok(LayoutHeader { name, d })
}

/// Writes a layout in the text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_layout<W: Write>(layout: &Layout, writer: W) -> std::io::Result<()> {
    let mut w = LayoutWriter::new(writer, &layout.name, layout.d)?;
    for f in &layout.features {
        w.feature(f)?;
    }
    w.finish().map(|_| ())
}

/// Incremental writer for the text format: header up front, one feature at
/// a time, `end` on [`LayoutWriter::finish`]. Output is byte-identical to
/// [`write_layout`] over the same features, so multi-million-rect layouts
/// can be generated and written without ever materializing a `Layout`.
#[derive(Debug)]
pub struct LayoutWriter<W: Write> {
    writer: W,
}

impl<W: Write> LayoutWriter<W> {
    /// Writes the file header and the `layout <name> d=<d>` line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn new(mut writer: W, name: &str, d: i64) -> std::io::Result<Self> {
        writeln!(writer, "# mpld layout interchange v1")?;
        writeln!(writer, "layout {name} d={d}")?;
        Ok(LayoutWriter { writer })
    }

    /// Writes one feature and its rectangles.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn feature(&mut self, f: &Feature) -> std::io::Result<()> {
        writeln!(self.writer, "feature {}", f.id())?;
        for r in f.rects() {
            writeln!(self.writer, "rect {} {} {} {}", r.xl, r.yl, r.xh, r.yh)?;
        }
        Ok(())
    }

    /// Writes the final `end` line and returns the inner writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn finish(mut self) -> std::io::Result<W> {
        writeln!(self.writer, "end")?;
        Ok(self.writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit_by_name;

    #[test]
    fn parse_errors_convert_to_mpld_errors_with_line_numbers() {
        use mpld_graph::MpldError;
        let text = "layout t d=100\nfeature 0\nrect zero 0 1 1\nend\n";
        let err: MpldError = read_layout(text.as_bytes()).unwrap_err().into();
        assert_eq!(
            err,
            MpldError::Parse {
                line: 3,
                reason: "cannot parse line 3: \"rect zero 0 1 1\"".into(),
            }
        );
        // Failures without a line report line 0 and omit it in Display.
        let err: MpldError = read_layout(b"layout t d=1\n".as_slice())
            .unwrap_err()
            .into();
        assert!(matches!(err, MpldError::Parse { line: 0, .. }), "{err}");
        let err: MpldError = ParseLayoutError::Io("boom".into()).into();
        assert_eq!(err, MpldError::Io("boom".into()));
    }

    #[test]
    fn garbage_input_never_panics() {
        // Fuzz-ish sweep: corrupted, truncated, and outright binary inputs
        // must all return Err (or a valid layout) without panicking.
        let valid =
            "layout t d=120\nfeature 0\nrect 0 0 100 30\nfeature 1\nrect 0 60 100 90\nend\n";
        let mut cases: Vec<Vec<u8>> = vec![
            Vec::new(),
            vec![0u8; 64],
            vec![0xFF; 64],
            b"\xF0\x9F\xA6\x80 not a layout".to_vec(),
            b"layout".to_vec(),
            b"layout t".to_vec(),
            b"layout t d=".to_vec(),
            b"layout t d=abc\nend\n".to_vec(),
            b"layout t d=-5\nfeature 0\nrect 0 0 1 1\nend\n".to_vec(),
            b"layout t d=100\nrect 0 0 1 1\nend\n".to_vec(),
            b"layout t d=100\nfeature 0\nrect 1 1 0 0\nend\n".to_vec(),
            b"layout t d=100\nfeature 0\nrect 0 0 1 1 9\nend\n".to_vec(),
            b"layout t d=100\nfeature 0\nrect 0 0 99999999999999999999 1\nend\n".to_vec(),
            b"layout t d=100\nfeature 4294967296\nrect 0 0 1 1\nend\n".to_vec(),
            b"end\n".to_vec(),
        ];
        // Every prefix of a valid file (truncation at each byte).
        for cut in 0..valid.len() {
            cases.push(valid.as_bytes()[..cut].to_vec());
        }
        // Single-byte corruptions of a valid file at every position.
        for pos in 0..valid.len() {
            for corrupt in [0u8, b'\n', 0xFF] {
                let mut bytes = valid.as_bytes().to_vec();
                bytes[pos] = corrupt;
                cases.push(bytes);
            }
        }
        for case in cases {
            // Must not panic; both Ok and Err are acceptable.
            let _ = read_layout(case.as_slice());
        }
    }

    #[test]
    fn limits_reject_overlong_lines_without_buffering() {
        let limits = ReadLimits {
            max_line_bytes: 64,
            ..ReadLimits::UNTRUSTED
        };
        // A newline-free flood: the reader must stop after the cap, not
        // buffer the whole stream.
        let mut flood = b"layout t d=100\nfeature 0\n".to_vec();
        flood.extend(std::iter::repeat_n(b'x', 1 << 20));
        let err = read_layout_limited(flood.as_slice(), &limits).unwrap_err();
        assert!(
            matches!(
                err,
                ParseLayoutError::LimitExceeded {
                    what: "line length in bytes",
                    limit: 64,
                    line: 3,
                }
            ),
            "{err:?}"
        );
        // A space-padded line of exactly the cap (plus its newline) is
        // still accepted.
        let mut ok = b"layout t d=100\nfeature 0\n".to_vec();
        let mut rect = b"rect 0 0 10 10".to_vec();
        rect.resize(64, b' ');
        rect.push(b'\n');
        ok.extend(rect);
        ok.extend(b"end\n");
        assert!(read_layout_limited(ok.as_slice(), &limits).is_ok());
    }

    #[test]
    fn limits_cap_rects_and_features() {
        let limits = ReadLimits {
            max_rects: 3,
            max_features: 2,
            ..ReadLimits::UNTRUSTED
        };
        let mut text = String::from("layout t d=100\nfeature 0\n");
        for i in 0..4 {
            text.push_str(&format!("rect {} 0 {} 10\n", 100 * i, 100 * i + 10));
        }
        text.push_str("end\n");
        let err = read_layout_limited(text.as_bytes(), &limits).unwrap_err();
        assert!(
            matches!(
                err,
                ParseLayoutError::LimitExceeded {
                    what: "rect count",
                    limit: 3,
                    ..
                }
            ),
            "{err:?}"
        );

        let mut text = String::from("layout t d=100\n");
        for f in 0..3 {
            text.push_str(&format!(
                "feature {f}\nrect {} 0 {} 10\n",
                300 * f,
                300 * f + 10
            ));
        }
        text.push_str("end\n");
        let err = read_layout_limited(text.as_bytes(), &limits).unwrap_err();
        assert!(
            matches!(
                err,
                ParseLayoutError::LimitExceeded {
                    what: "feature count",
                    limit: 2,
                    ..
                }
            ),
            "{err:?}"
        );
        // Poly rects count against the cap too.
        let text =
            "layout t d=100\nfeature 0\npoly 0 0 30 0 30 10 10 10 10 30 0 30\nrect 50 50 60 60\nrect 80 80 90 90\nend\n";
        assert!(matches!(
            read_layout_limited(text.as_bytes(), &limits).unwrap_err(),
            ParseLayoutError::LimitExceeded {
                what: "rect count",
                ..
            }
        ));
    }

    #[test]
    fn limit_errors_carry_line_numbers_into_mpld_errors() {
        use mpld_graph::MpldError;
        let limits = ReadLimits {
            max_rects: 1,
            ..ReadLimits::UNTRUSTED
        };
        let text = "layout t d=100\nfeature 0\nrect 0 0 10 10\nrect 20 0 30 10\nend\n";
        let err: MpldError = read_layout_limited(text.as_bytes(), &limits)
            .unwrap_err()
            .into();
        assert!(matches!(err, MpldError::Parse { line: 4, .. }), "{err}");
    }

    #[test]
    fn unlimited_matches_read_layout() {
        let layout = circuit_by_name("C432").expect("exists").generate();
        let mut buf = Vec::new();
        write_layout(&layout, &mut buf).expect("write");
        let a = read_layout(buf.as_slice()).expect("parse");
        let b = read_layout_limited(buf.as_slice(), &ReadLimits::UNTRUSTED).expect("parse");
        assert_eq!(a, b);
    }

    #[test]
    fn streaming_matches_collected_and_propagates_sink_errors() {
        let layout = circuit_by_name("C432").expect("exists").generate();
        let mut buf = Vec::new();
        write_layout(&layout, &mut buf).expect("write");

        let mut streamed = Vec::new();
        let header = read_layout_streaming(buf.as_slice(), &ReadLimits::unlimited(), |f| {
            streamed.push(f);
            Ok(())
        })
        .expect("parse");
        assert_eq!(header.name, layout.name);
        assert_eq!(header.d, layout.d);
        assert_eq!(streamed, layout.features);

        // A failing sink aborts the parse with its error.
        let mut seen = 0usize;
        let err = read_layout_streaming(buf.as_slice(), &ReadLimits::unlimited(), |_| {
            seen += 1;
            if seen == 3 {
                Err(ParseLayoutError::Io("sink full".into()))
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err, ParseLayoutError::Io("sink full".into()));
        assert_eq!(seen, 3);
    }

    #[test]
    fn layout_writer_matches_write_layout() {
        let layout = circuit_by_name("C432").expect("exists").generate();
        let mut whole = Vec::new();
        write_layout(&layout, &mut whole).expect("write");

        let mut incremental = LayoutWriter::new(Vec::new(), &layout.name, layout.d).expect("hdr");
        for f in &layout.features {
            incremental.feature(f).expect("feature");
        }
        let incremental = incremental.finish().expect("finish");
        assert_eq!(whole, incremental);
    }

    #[test]
    fn round_trip_benchmark_layout() {
        let layout = circuit_by_name("C432").expect("exists").generate();
        let mut buf = Vec::new();
        write_layout(&layout, &mut buf).expect("write");
        let back = read_layout(buf.as_slice()).expect("parse");
        assert_eq!(back, layout);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hi\n\nlayout t d=100\n# mid\nfeature 0\nrect 0 0 10 10\n\nend\n";
        let l = read_layout(text.as_bytes()).expect("parse");
        assert_eq!(l.d, 100);
        assert_eq!(l.features.len(), 1);
    }

    #[test]
    fn missing_header_rejected() {
        let text = "feature 0\nrect 0 0 1 1\nend\n";
        assert_eq!(
            read_layout(text.as_bytes()).unwrap_err(),
            ParseLayoutError::MissingHeader
        );
    }

    #[test]
    fn non_dense_ids_rejected() {
        let text = "layout t d=100\nfeature 1\nrect 0 0 1 1\nend\n";
        assert!(matches!(
            read_layout(text.as_bytes()).unwrap_err(),
            ParseLayoutError::BadFeatureId {
                expected: 0,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn rect_outside_feature_rejected() {
        let text = "layout t d=100\nrect 0 0 1 1\nend\n";
        assert!(matches!(
            read_layout(text.as_bytes()).unwrap_err(),
            ParseLayoutError::RectOutsideFeature { .. }
        ));
    }

    #[test]
    fn empty_feature_rejected() {
        let text = "layout t d=100\nfeature 0\nfeature 1\nrect 0 0 1 1\nend\n";
        assert_eq!(
            read_layout(text.as_bytes()).unwrap_err(),
            ParseLayoutError::EmptyFeature { id: 0 }
        );
    }

    #[test]
    fn missing_end_rejected() {
        let text = "layout t d=100\nfeature 0\nrect 0 0 1 1\n";
        assert_eq!(
            read_layout(text.as_bytes()).unwrap_err(),
            ParseLayoutError::MissingEnd
        );
    }

    #[test]
    fn poly_lines_decompose_into_rects() {
        // An L-shaped feature from a polygon boundary.
        let text = "layout t d=100\nfeature 0\npoly 0 0 30 0 30 10 10 10 10 30 0 30\nend\n";
        let l = read_layout(text.as_bytes()).expect("parse");
        assert_eq!(l.features.len(), 1);
        let area: i64 = l.features[0].rects().iter().map(|r| r.area()).sum();
        assert_eq!(area, 300 + 200);
    }

    #[test]
    fn bad_poly_rejected() {
        // Diagonal edge.
        let text = "layout t d=100\nfeature 0\npoly 0 0 10 10 10 0 0 5\nend\n";
        assert!(matches!(
            read_layout(text.as_bytes()).unwrap_err(),
            ParseLayoutError::BadLine { .. }
        ));
    }

    #[test]
    fn bad_rect_rejected() {
        let text = "layout t d=100\nfeature 0\nrect 0 0 1\nend\n";
        assert!(matches!(
            read_layout(text.as_bytes()).unwrap_err(),
            ParseLayoutError::BadLine { .. }
        ));
    }
}
