#!/usr/bin/env bash
# Server smoke test, two phases:
#
# 1. Cache parity: train a tiny model, record the CLI run's digest
#    (`mpld adaptive --json`), start `mpld serve`, POST the same circuit
#    twice under distinct job ids — the repeat must be served entirely
#    from the cross-request caches — assert both served summaries match
#    the CLI digest, then SIGTERM the server and require a clean drain.
#
# 2. Durable jobs: serve with `--journal-dir`, run a journaled job via
#    `mpld submit`, `kill -9` the server, tear the job's journal to the
#    torn-append state a mid-write SIGKILL leaves behind, restart a new
#    server process over the same journal dir, re-submit the same job
#    id, and assert the resumed run reused journal records and its
#    digest is bit-identical to the CLI oracle.
#
# Usage: scripts/server_smoke.sh [model-path]
# Knobs: MPLD_BIN (default target/release/mpld), MPLD_SMOKE_PORT (7979).
set -euo pipefail

BIN=${MPLD_BIN:-target/release/mpld}
MODEL=${1:-/tmp/ci-serve-model.bin}
PORT=${MPLD_SMOKE_PORT:-7979}
LOG=/tmp/ci-serve.log

"$BIN" train -o "$MODEL" --circuits C432 --cap 20 --epochs 2

# The oracle: the same circuit/seed through the per-request CLI path.
"$BIN" adaptive C432 --model "$MODEL" --seed 7 --threads 1 --json true \
  > /tmp/ci-cli-summary.json
cat /tmp/ci-cli-summary.json

"$BIN" serve --model "$MODEL" --addr "127.0.0.1:$PORT" --workers 2 \
  > "$LOG" &
SERVER_PID=$!
trap 'kill -9 $SERVER_PID 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  grep -q "listening on" "$LOG" 2>/dev/null && break
  sleep 0.1
done
grep -q "listening on" "$LOG"

# Distinct job ids per POST: durable jobs are idempotent, so a
# byte-identical re-POST would replay the first job's event log instead
# of exercising the warm engine path.
post_decompose() {
  python3 - "$PORT" "$1" <<'EOF'
import socket, sys
body = '{"circuit":"C432","seed":7,"job_id":"%s"}' % sys.argv[2]
req = ("POST /decompose HTTP/1.1\r\nHost: smoke\r\n"
       f"Content-Length: {len(body)}\r\n\r\n{body}")
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=120)
s.sendall(req.encode())
out = b""
while True:
    chunk = s.recv(65536)
    if not chunk:
        break
    out += chunk
sys.stdout.write(out.decode())
EOF
}

post_decompose smoke-1 > /tmp/ci-serve-1.txt
post_decompose smoke-2 > /tmp/ci-serve-2.txt

python3 - /tmp/ci-cli-summary.json /tmp/ci-serve-1.txt /tmp/ci-serve-2.txt <<'EOF'
import json, sys

cli = json.load(open(sys.argv[1]))

def done_summary(path):
    for line in open(path):
        if line.startswith('{"event":"done"'):
            return json.loads(line)["summary"]
    sys.exit(f"{path}: no done event in the streamed response")

first = done_summary(sys.argv[2])
repeat = done_summary(sys.argv[3])
for served, who in ((first, "first"), (repeat, "repeat")):
    assert served["cost"] == cli["cost"], (
        f"{who}: served cost {served['cost']} != CLI {cli['cost']}")
    for engine in ("matching", "colorgnn", "ec", "ilp"):
        assert served["usage"][engine] == cli["usage"][engine], (
            f"{who}: served {engine} usage {served['usage'][engine]} "
            f"!= CLI {cli['usage'][engine]}")
assert repeat["inference"]["routing_memo_hits"] > 0, (
    "repeat request missed the cross-request routing memo")
assert repeat["inference"]["units_inferred"] == 0, (
    "repeat request re-ran routing inference")
print("served digests match the CLI run; repeat hit the cross-request memo")
EOF

# Graceful drain: SIGTERM must finish queued work and exit 0.
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
grep -q "drained, exiting" "$LOG"
trap - EXIT
echo "phase 1 passed: served digests match the CLI run"

# ---------------------------------------------------------------------
# Phase 2: kill -9 a journaled job mid-append, restart, resume.
# `--colorgnn false` routes the heuristic head's units to the certified
# ILP/EC tail — the part of a run that is journaled — so the resumed
# run has records to reuse.
JOURNAL=/tmp/ci-serve-journal
LOG2=/tmp/ci-serve-resume.log
PORT2=$((PORT + 1))
rm -rf "$JOURNAL"

# The oracle: the same job through the per-request CLI path.
"$BIN" adaptive C432 --model "$MODEL" --seed 7 --threads 1 \
  --colorgnn false --json true > /tmp/ci-resume-oracle.json
cat /tmp/ci-resume-oracle.json

start_journaled_server() {
  "$BIN" serve --model "$MODEL" --addr "127.0.0.1:$PORT2" --workers 2 \
    --colorgnn false --journal-dir "$JOURNAL" > "$LOG2" &
  SERVER_PID=$!
  trap 'kill -9 $SERVER_PID 2>/dev/null || true' EXIT
  for _ in $(seq 1 100); do
    grep -q "listening on" "$LOG2" 2>/dev/null && break
    sleep 0.1
  done
  grep -q "listening on" "$LOG2"
}

start_journaled_server
"$BIN" submit C432 --addr "127.0.0.1:$PORT2" --seed 7 \
  --job-id killtest --json true > /tmp/ci-submit-1.json

# The kill: SIGKILL the server, then tear the job's journal to the
# state a mid-append SIGKILL leaves on disk (whole records + a torn
# half-line, no trailing newline).
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
python3 - "$JOURNAL/killtest.jsonl" <<'EOF'
import sys
path = sys.argv[1]
lines = open(path).read().splitlines()
assert len(lines) >= 3, f"journal too short to tear: {len(lines)} lines"
keep = max(2, 1 + (len(lines) - 1) // 2)
torn = "\n".join(lines[:keep]) + "\n" + lines[keep][: len(lines[keep]) // 2]
open(path, "w").write(torn)
print(f"tore journal to {keep - 1} whole records + a torn half-line")
EOF

# The restart: a fresh server process over the same journal dir; the
# re-submitted job id must resume from the surviving records.
start_journaled_server
"$BIN" submit C432 --addr "127.0.0.1:$PORT2" --seed 7 \
  --job-id killtest --json true > /tmp/ci-submit-2.json

python3 - /tmp/ci-resume-oracle.json /tmp/ci-submit-1.json /tmp/ci-submit-2.json <<'EOF'
import json, sys

oracle = json.load(open(sys.argv[1]))
first = json.load(open(sys.argv[2]))["summary"]
resumed = json.load(open(sys.argv[3]))["summary"]

assert first["resumed_units"] == 0, (
    f"uninterrupted run resumed {first['resumed_units']} units")
assert resumed["resumed_units"] > 0, (
    "restarted run reused no journal records")
for served, who in ((first, "first"), (resumed, "resumed")):
    assert served["cost"] == oracle["cost"], (
        f"{who}: served cost {served['cost']} != CLI {oracle['cost']}")
    for engine in ("matching", "colorgnn", "ec", "ilp"):
        assert served["usage"][engine] == oracle["usage"][engine], (
            f"{who}: served {engine} usage {served['usage'][engine]} "
            f"!= CLI {oracle['usage'][engine]}")
print(f"resumed run reused {resumed['resumed_units']} journal records; "
      "digest matches the CLI oracle")
EOF

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
grep -q "drained, exiting" "$LOG2"
trap - EXIT
echo "server smoke passed"
