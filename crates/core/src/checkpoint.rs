//! Crash-safe checkpoint/resume for adaptive decomposition runs.
//!
//! The parallel adaptive pipeline appends one JSONL record per solved
//! ILP/EC-tail unit to a journal file (after a header identifying the
//! layout and parameters). A later run loads the journal, audits every
//! recorded coloring against the unit graph it claims to color, and skips
//! the already-completed units — a killed run resumes where it stopped
//! instead of restarting from zero.
//!
//! The format is deliberately tolerant of the crash it exists for: the
//! loader ignores a truncated or garbled trailing line (the unit is simply
//! re-solved), keeps the *last* record when a unit appears twice (resumed
//! runs append to the same file), and rejects the whole journal only when
//! its header disagrees with the present layout/parameters.
//!
//! The GNN routing passes (selector, redundancy, matching, ColorGNN) are
//! deterministic given the model seed and always re-run on resume; only
//! the expensive exact-solver tail is journaled. With the same `--seed`, a
//! resumed run therefore reproduces the uninterrupted run's outcomes for
//! every journaled unit bit-identically.

use mpld_graph::{Certainty, CostBreakdown, LayoutGraph, MpldError};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::framework::EngineKind;

/// Journal format version.
const VERSION: u32 = 1;

/// A structural fingerprint of one unit graph, stored with each record so
/// a journal from a different layout (or a changed generator) can never be
/// replayed onto the wrong unit.
pub fn unit_fingerprint(g: &LayoutGraph) -> u64 {
    // Shared with the routing-stage embedding memo: one fingerprint
    // definition keeps journal records and memo keys consistent.
    mpld_matching::graph_fingerprint(g)
}

/// One journaled unit outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointEntry {
    /// Index of the unit within the prepared layout.
    pub unit: usize,
    /// [`unit_fingerprint`] of the unit graph at record time.
    pub fingerprint: u64,
    /// Engine whose coloring was kept.
    pub engine: EngineKind,
    /// The recorded certainty.
    pub certainty: Certainty,
    /// Whether the unit fell back due to budget exhaustion.
    pub budget_fallback: bool,
    /// The coloring.
    pub coloring: Vec<u8>,
    /// The recorded cost (re-audited before any resume accepts it).
    pub cost: CostBreakdown,
}

/// Identification header of a journal: the layout and parameters it
/// belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointHeader {
    /// Layout name.
    pub layout: String,
    /// Mask count.
    pub k: u8,
    /// Stitch weight.
    pub alpha: f64,
    /// Number of units in the prepared layout.
    pub units: usize,
}

/// A loaded journal: header plus the last record per unit.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    header: CheckpointHeader,
    entries: HashMap<usize, CheckpointEntry>,
    skipped_lines: usize,
}

impl Checkpoint {
    /// Loads a journal from `path`.
    ///
    /// Returns `Ok(None)` when the file does not exist (a fresh run).
    /// Malformed or truncated lines are skipped, not fatal; a missing or
    /// malformed *header* is.
    ///
    /// # Errors
    ///
    /// [`MpldError::Io`] on read failure, [`MpldError::Parse`] when no
    /// valid header line is present.
    pub fn load(path: &Path) -> Result<Option<Checkpoint>, MpldError> {
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(MpldError::Io(e.to_string())),
        };
        Ok(Some(Self::read(BufReader::new(file))?))
    }

    /// Loads a journal from any reader (see [`Checkpoint::load`]).
    ///
    /// # Errors
    ///
    /// [`MpldError::Io`] on read failure, [`MpldError::Parse`] when the
    /// first line is not a valid header.
    pub fn read<R: BufRead>(reader: R) -> Result<Checkpoint, MpldError> {
        let mut lines = reader.lines();
        let header_line = match lines.next() {
            Some(Ok(l)) => l,
            Some(Err(e)) => return Err(MpldError::Io(e.to_string())),
            None => {
                return Err(MpldError::Parse {
                    line: 1,
                    reason: "empty checkpoint journal".into(),
                })
            }
        };
        let header = parse_header(&header_line).ok_or_else(|| MpldError::Parse {
            line: 1,
            reason: "malformed checkpoint header".into(),
        })?;
        let mut entries = HashMap::new();
        let mut skipped_lines = 0usize;
        for line in lines {
            let Ok(line) = line else {
                skipped_lines += 1;
                continue;
            };
            match parse_entry(&line) {
                // Last record wins: resumed runs append to the same file.
                Some(e) => {
                    entries.insert(e.unit, e);
                }
                None => {
                    if !line.trim().is_empty() {
                        skipped_lines += 1;
                    }
                }
            }
        }
        Ok(Checkpoint {
            header,
            entries,
            skipped_lines,
        })
    }

    /// The journal's identification header.
    pub fn header(&self) -> &CheckpointHeader {
        &self.header
    }

    /// Whether this journal belongs to the given layout/parameters.
    pub fn matches(&self, layout: &str, k: u8, alpha: f64, units: usize) -> bool {
        self.header.layout == layout
            && self.header.k == k
            && (self.header.alpha - alpha).abs() < 1e-9
            && self.header.units == units
    }

    /// The record for `unit`, provided its stored fingerprint equals the
    /// present graph's `fingerprint` (a mismatch means the unit changed —
    /// the record is ignored).
    pub fn get(&self, unit: usize, fingerprint: u64) -> Option<&CheckpointEntry> {
        self.entries
            .get(&unit)
            .filter(|e| e.fingerprint == fingerprint)
    }

    /// Number of usable records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no records were recovered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of malformed / truncated lines the loader skipped.
    pub fn skipped_lines(&self) -> usize {
        self.skipped_lines
    }
}

/// Append-only journal writer shared by the pipeline's workers.
///
/// Every record is a single `write` + flush under a mutex, so a crash can
/// lose at most the line being written — which the loader skips.
#[derive(Debug)]
pub struct JournalWriter {
    file: Mutex<BufWriter<File>>,
}

impl JournalWriter {
    /// Opens `path` for appending, writing the header first when the file
    /// is new or empty. Pass the header of the *present* run; resuming
    /// onto a journal whose header disagrees should be rejected by the
    /// caller before ever writing (see [`Checkpoint::matches`]).
    ///
    /// # Errors
    ///
    /// [`MpldError::Io`] when the file cannot be opened or written.
    pub fn append(path: &Path, header: &CheckpointHeader) -> Result<JournalWriter, MpldError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| MpldError::Io(e.to_string()))?;
        let is_empty = file
            .metadata()
            .map(|m| m.len() == 0)
            .map_err(|e| MpldError::Io(e.to_string()))?;
        let mut w = BufWriter::new(file);
        if is_empty {
            writeln!(
                w,
                "{{\"v\":{VERSION},\"layout\":{},\"k\":{},\"alpha\":{},\"units\":{}}}",
                json_string(&header.layout),
                header.k,
                header.alpha,
                header.units
            )
            .map_err(|e| MpldError::Io(e.to_string()))?;
            w.flush().map_err(|e| MpldError::Io(e.to_string()))?;
        }
        Ok(JournalWriter {
            file: Mutex::new(w),
        })
    }

    /// Appends one unit record and flushes it to the OS. Best-effort by
    /// design: callers treat a failed append as a lost checkpoint, never
    /// as a failed solve.
    ///
    /// # Errors
    ///
    /// [`MpldError::Io`] when the record cannot be written.
    pub fn record(&self, e: &CheckpointEntry) -> Result<(), MpldError> {
        let mut line = format!(
            "{{\"unit\":{},\"fp\":{},\"engine\":\"{}\",\"certainty\":\"{}\",\"budget_fallback\":{},\"conflicts\":{},\"stitches\":{},\"coloring\":[",
            e.unit,
            e.fingerprint,
            engine_str(e.engine),
            certainty_str(e.certainty),
            e.budget_fallback,
            e.cost.conflicts,
            e.cost.stitches,
        );
        for (i, c) in e.coloring.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&c.to_string());
        }
        line.push_str("]}");
        let mut w = self.file.lock().unwrap_or_else(|p| p.into_inner());
        writeln!(w, "{line}").map_err(|e| MpldError::Io(e.to_string()))?;
        w.flush().map_err(|e| MpldError::Io(e.to_string()))
    }
}

fn engine_str(e: EngineKind) -> &'static str {
    match e {
        EngineKind::Matching => "matching",
        EngineKind::ColorGnn => "colorgnn",
        EngineKind::Ilp => "ilp",
        EngineKind::Ec => "ec",
    }
}

fn engine_from_str(s: &str) -> Option<EngineKind> {
    match s {
        "matching" => Some(EngineKind::Matching),
        "colorgnn" => Some(EngineKind::ColorGnn),
        "ilp" => Some(EngineKind::Ilp),
        "ec" => Some(EngineKind::Ec),
        _ => None,
    }
}

fn certainty_str(c: Certainty) -> &'static str {
    match c {
        Certainty::Certified => "certified",
        Certainty::Heuristic => "heuristic",
        Certainty::BudgetExhausted => "budget_exhausted",
        Certainty::Degraded => "degraded",
    }
}

fn certainty_from_str(s: &str) -> Option<Certainty> {
    match s {
        "certified" => Some(Certainty::Certified),
        "heuristic" => Some(Certainty::Heuristic),
        "budget_exhausted" => Some(Certainty::BudgetExhausted),
        "degraded" => Some(Certainty::Degraded),
        _ => None,
    }
}

/// Escapes a string for embedding in a JSON line (quotes + backslashes +
/// control characters; layout names are ASCII identifiers in practice).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Extracts the raw token following `"key":` in a single-line JSON
/// object. Strings return their unescaped contents, scalars the bare
/// token, arrays the bracketed body.
pub(crate) fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let rest = rest.trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(&stripped[..end])
    } else if let Some(stripped) = rest.strip_prefix('[') {
        let end = stripped.find(']')?;
        Some(&stripped[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

fn parse_header(line: &str) -> Option<CheckpointHeader> {
    let v: u32 = field(line, "v")?.parse().ok()?;
    if v != VERSION {
        return None;
    }
    Some(CheckpointHeader {
        layout: field(line, "layout")?.to_string(),
        k: field(line, "k")?.parse().ok()?,
        alpha: field(line, "alpha")?.parse().ok()?,
        units: field(line, "units")?.parse().ok()?,
    })
}

fn parse_entry(line: &str) -> Option<CheckpointEntry> {
    // A truncated trailing line misses the closing bracket/brace and
    // fails one of the extractions below — exactly the tolerance needed.
    if !line.trim_end().ends_with('}') {
        return None;
    }
    let coloring: Vec<u8> = {
        let body = field(line, "coloring")?;
        if body.trim().is_empty() {
            Vec::new()
        } else {
            body.split(',')
                .map(|t| t.trim().parse::<u8>())
                .collect::<Result<_, _>>()
                .ok()?
        }
    };
    Some(CheckpointEntry {
        unit: field(line, "unit")?.parse().ok()?,
        fingerprint: field(line, "fp")?.parse().ok()?,
        engine: engine_from_str(field(line, "engine")?)?,
        certainty: certainty_from_str(field(line, "certainty")?)?,
        budget_fallback: field(line, "budget_fallback")?.parse().ok()?,
        coloring,
        cost: CostBreakdown {
            conflicts: field(line, "conflicts")?.parse().ok()?,
            stitches: field(line, "stitches")?.parse().ok()?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_entry(unit: usize) -> CheckpointEntry {
        CheckpointEntry {
            unit,
            fingerprint: 0xDEAD + unit as u64,
            engine: EngineKind::Ec,
            certainty: Certainty::Certified,
            budget_fallback: false,
            coloring: vec![0, 1, 2, 0],
            cost: CostBreakdown {
                conflicts: 0,
                stitches: 1,
            },
        }
    }

    fn header() -> CheckpointHeader {
        CheckpointHeader {
            layout: "C432".into(),
            k: 3,
            alpha: 0.1,
            units: 7,
        }
    }

    #[test]
    fn roundtrip_via_file() {
        let dir = std::env::temp_dir().join("mpld-checkpoint-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);

        let w = JournalWriter::append(&path, &header()).unwrap();
        w.record(&sample_entry(0)).unwrap();
        w.record(&sample_entry(3)).unwrap();
        drop(w);
        // Re-append (a resumed run) and add one more record.
        let w = JournalWriter::append(&path, &header()).unwrap();
        w.record(&sample_entry(5)).unwrap();
        drop(w);

        let cp = Checkpoint::load(&path).unwrap().expect("journal exists");
        assert!(cp.matches("C432", 3, 0.1, 7));
        assert!(!cp.matches("C499", 3, 0.1, 7));
        assert_eq!(cp.len(), 3);
        assert_eq!(cp.get(3, 0xDEAD + 3), Some(&sample_entry(3)));
        assert!(cp.get(3, 0xBEEF).is_none(), "fingerprint mismatch ignored");
        assert_eq!(cp.skipped_lines(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_fresh_run() {
        let path = std::env::temp_dir().join("mpld-checkpoint-test-nonexistent.jsonl");
        assert!(Checkpoint::load(&path).unwrap().is_none());
    }

    #[test]
    fn truncated_and_garbled_lines_are_skipped() {
        let text = concat!(
            "{\"v\":1,\"layout\":\"C432\",\"k\":3,\"alpha\":0.1,\"units\":7}\n",
            "{\"unit\":0,\"fp\":57005,\"engine\":\"ilp\",\"certainty\":\"certified\",\"budget_fallback\":false,\"conflicts\":1,\"stitches\":0,\"coloring\":[2,2,1]}\n",
            "not json at all\n",
            "{\"unit\":1,\"fp\":57006,\"engine\":\"ec\",\"certainty\":\"heuri", // truncated mid-write
        );
        let cp = Checkpoint::read(Cursor::new(text)).unwrap();
        assert_eq!(cp.len(), 1);
        assert_eq!(cp.skipped_lines(), 2);
        let e = cp.get(0, 57005).unwrap();
        assert_eq!(e.engine, EngineKind::Ilp);
        assert_eq!(e.coloring, vec![2, 2, 1]);
        assert_eq!(e.cost.conflicts, 1);
    }

    #[test]
    fn last_record_per_unit_wins() {
        let text = concat!(
            "{\"v\":1,\"layout\":\"x\",\"k\":3,\"alpha\":0.1,\"units\":2}\n",
            "{\"unit\":0,\"fp\":9,\"engine\":\"ilp\",\"certainty\":\"budget_exhausted\",\"budget_fallback\":true,\"conflicts\":5,\"stitches\":0,\"coloring\":[0]}\n",
            "{\"unit\":0,\"fp\":9,\"engine\":\"ilp\",\"certainty\":\"certified\",\"budget_fallback\":false,\"conflicts\":2,\"stitches\":0,\"coloring\":[1]}\n",
        );
        let cp = Checkpoint::read(Cursor::new(text)).unwrap();
        let e = cp.get(0, 9).unwrap();
        assert_eq!(e.certainty, Certainty::Certified);
        assert_eq!(e.coloring, vec![1]);
    }

    #[test]
    fn bad_header_is_fatal() {
        let err = Checkpoint::read(Cursor::new("nonsense\n")).unwrap_err();
        assert!(matches!(err, MpldError::Parse { .. }));
        let err = Checkpoint::read(Cursor::new("")).unwrap_err();
        assert!(matches!(err, MpldError::Parse { .. }));
    }

    #[test]
    fn fingerprint_distinguishes_graphs() {
        let a = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2)]).unwrap();
        let b = LayoutGraph::homogeneous(3, vec![(0, 1), (0, 2)]).unwrap();
        assert_ne!(unit_fingerprint(&a), unit_fingerprint(&b));
        assert_eq!(unit_fingerprint(&a), unit_fingerprint(&a.clone()));
    }

    #[test]
    fn degraded_certainty_roundtrips() {
        let mut e = sample_entry(2);
        e.certainty = Certainty::Degraded;
        e.engine = EngineKind::Ilp;
        let dir = std::env::temp_dir().join("mpld-checkpoint-test-degraded");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);
        let w = JournalWriter::append(&path, &header()).unwrap();
        w.record(&e).unwrap();
        drop(w);
        let cp = Checkpoint::load(&path).unwrap().unwrap();
        assert_eq!(cp.get(2, e.fingerprint), Some(&e));
        let _ = std::fs::remove_file(&path);
    }
}
