//! Checkpoint/resume, end to end: a run that journals its ILP/EC-tail
//! solves can be killed and resumed bit-identically, the loader tolerates
//! the truncated trailing line a crash leaves behind, and tampered
//! records are audited out and silently re-solved.

use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// Serializes the bit-identity tests: they reseed the shared fixture's
/// ColorGNN RNG and compare two runs, which must not interleave.
static SEED_LOCK: Mutex<()> = Mutex::new(());

use mpld::{
    prepare, train_framework, AdaptiveFramework, BudgetPolicy, Checkpoint, CheckpointHeader,
    JournalWriter, OfflineConfig, PreparedLayout, Recovery, TrainingData,
};
use mpld_graph::DecomposeParams;
use mpld_layout::circuit_by_name;

fn fixture() -> &'static (AdaptiveFramework, PreparedLayout) {
    static FIXTURE: OnceLock<(AdaptiveFramework, PreparedLayout)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let params = DecomposeParams::tpl();
        let layout = circuit_by_name("C432").expect("exists").generate();
        let prep = prepare(&layout, &params);
        let mut data = TrainingData::default();
        data.add_layout_capped(&prep, &params, 8);
        let mut cfg = OfflineConfig::default();
        cfg.rgcn.epochs = 1;
        cfg.colorgnn.epochs = 1;
        cfg.library = mpld_matching::LibraryConfig {
            max_parent_size: 4,
            max_splits: 1,
            max_nodes: 5,
            stitches: false,
        };
        let mut fw = train_framework(&data, &params, &cfg);
        // Route everything the library misses to the ILP/EC tail — the
        // journaled path these tests exercise.
        fw.use_colorgnn = false;
        (fw, prep)
    })
}

fn journal_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mpld-recovery-tests");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn header_for(prep: &PreparedLayout, fw: &AdaptiveFramework) -> CheckpointHeader {
    CheckpointHeader {
        layout: prep.name.clone(),
        k: fw.params.k,
        alpha: fw.params.alpha,
        units: prep.units.len(),
    }
}

/// Runs once with a journal, "kills" the run by truncating the journal
/// mid-record (as a crash during a write would), resumes from it, and
/// checks the resumed run reproduces the uninterrupted run bit-identically.
#[test]
fn killed_run_resumes_bit_identically() {
    let _guard = SEED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (fw, prep) = fixture();
    let path = journal_path("kill-resume.jsonl");
    let policy = BudgetPolicy::unlimited();

    fw.colorgnn.reseed(42);
    let w = JournalWriter::append(&path, &header_for(prep, fw)).expect("journal opens");
    let baseline = fw
        .decompose_prepared_parallel_recoverable(
            prep,
            2,
            &policy,
            Recovery {
                resume: None,
                journal: Some(&w),
            },
        )
        .expect("unlimited policy cannot fail");
    drop(w);
    assert!(
        baseline.usage.ilp + baseline.usage.ec > 0,
        "fixture must exercise the journaled ILP/EC tail"
    );

    // Simulate the kill: chop the last 20 bytes, leaving a torn record.
    let bytes = std::fs::read(&path).expect("journal readable");
    assert!(bytes.len() > 40, "journal must contain records");
    std::fs::write(&path, &bytes[..bytes.len() - 20]).expect("truncate");

    let cp = Checkpoint::load(&path)
        .expect("load ok")
        .expect("journal exists");
    assert!(cp.matches(&prep.name, fw.params.k, fw.params.alpha, prep.units.len()));
    assert!(cp.skipped_lines() >= 1, "the torn record is skipped");
    assert!(!cp.is_empty(), "intact records survive");

    fw.colorgnn.reseed(42);
    let resumed = fw
        .decompose_prepared_parallel_recoverable(
            prep,
            2,
            &policy,
            Recovery {
                resume: Some(&cp),
                journal: None,
            },
        )
        .expect("unlimited policy cannot fail");

    assert!(resumed.resumed_units > 0, "records must actually be reused");
    assert_eq!(
        baseline.pipeline.decomposition, resumed.pipeline.decomposition,
        "resume must be bit-identical"
    );
    assert_eq!(baseline.pipeline.cost, resumed.pipeline.cost);
    assert_eq!(baseline.unit_engines, resumed.unit_engines);
    assert_eq!(baseline.usage, resumed.usage);
    assert_eq!(resumed.budget.quarantined, 0);
    let _ = std::fs::remove_file(&path);
}

/// A journal record whose claimed cost disagrees with the from-scratch
/// audit recomputation must be rejected on resume and the unit re-solved
/// — the final result is still identical to the honest run.
#[test]
fn tampered_record_is_audited_out_and_resolved() {
    let _guard = SEED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (fw, prep) = fixture();
    let path = journal_path("tampered.jsonl");
    let policy = BudgetPolicy::unlimited();

    fw.colorgnn.reseed(7);
    let w = JournalWriter::append(&path, &header_for(prep, fw)).expect("journal opens");
    let baseline = fw
        .decompose_prepared_parallel_recoverable(
            prep,
            2,
            &policy,
            Recovery {
                resume: None,
                journal: Some(&w),
            },
        )
        .expect("unlimited policy cannot fail");
    drop(w);

    // Tamper: lie about the first record's conflict count (no unit in
    // this fixture has anywhere near 99 conflicts).
    let text = std::fs::read_to_string(&path).expect("journal readable");
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let victim = lines
        .iter()
        .position(|l| l.contains("\"conflicts\":"))
        .expect("at least one record");
    let start = lines[victim].find("\"conflicts\":").expect("field") + "\"conflicts\":".len();
    let end = start
        + lines[victim][start..]
            .find(',')
            .expect("conflicts is not the last field");
    lines[victim].replace_range(start..end, "99");
    std::fs::write(&path, lines.join("\n") + "\n").expect("rewrite");

    let cp = Checkpoint::load(&path)
        .expect("load ok")
        .expect("journal exists");
    let intact = cp.len();
    fw.colorgnn.reseed(7);
    let resumed = fw
        .decompose_prepared_parallel_recoverable(
            prep,
            2,
            &policy,
            Recovery {
                resume: Some(&cp),
                journal: None,
            },
        )
        .expect("unlimited policy cannot fail");

    assert!(
        resumed.resumed_units < intact,
        "the tampered record must not be resumed"
    );
    assert_eq!(
        baseline.pipeline.decomposition, resumed.pipeline.decomposition,
        "the audited-out unit re-solves to the honest result"
    );
    assert_eq!(baseline.pipeline.cost, resumed.pipeline.cost);
    let _ = std::fs::remove_file(&path);
}

/// A journal from a different layout/parameters is detected by the header
/// check the CLI performs before resuming.
#[test]
fn mismatched_header_is_detected() {
    let (fw, prep) = fixture();
    let path = journal_path("mismatch.jsonl");
    let header = CheckpointHeader {
        layout: "SomethingElse".into(),
        k: fw.params.k,
        alpha: fw.params.alpha,
        units: prep.units.len() + 5,
    };
    let w = JournalWriter::append(&path, &header).expect("journal opens");
    drop(w);
    let cp = Checkpoint::load(&path)
        .expect("load ok")
        .expect("journal exists");
    assert!(!cp.matches(&prep.name, fw.params.k, fw.params.alpha, prep.units.len()));
    let _ = std::fs::remove_file(&path);
}
