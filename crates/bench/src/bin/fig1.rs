//! Fig. 1 — graph embeddings of layout graphs in a vector space.
//!
//! Embeds every unit graph of a few circuits with the trained selector
//! RGCN, projects the 64-D embeddings to 2-D with PCA, prints an ASCII
//! scatter plot (marker = unit size class), and writes the coordinates
//! to `results/fig1.csv`.

use mpld_bench::{train_fold, Bench};
use mpld_graph::LayoutGraph;
use mpld_tensor::{pca2, Matrix};
use std::io::Write;

fn main() {
    let bench = Bench::load();
    let n = bench.circuits.len();
    let train_idx: Vec<usize> = (0..n / 2).collect();
    let test_idx: Vec<usize> = (n / 2..n).collect();
    let fw = train_fold(&bench, &train_idx);

    let mut graphs: Vec<&LayoutGraph> = Vec::new();
    for &ci in &test_idx {
        graphs.extend(bench.prepared[ci].units.iter().map(|u| &u.hetero));
    }
    if graphs.is_empty() {
        eprintln!("no unit graphs to embed");
        return;
    }
    let embeddings = fw.selector.embeddings_batch(&graphs);
    let dim = embeddings[0].0.len();
    let mut data = Matrix::zeros(graphs.len(), dim);
    for (r, (emb, _)) in embeddings.iter().enumerate() {
        for (c, &v) in emb.iter().enumerate() {
            data[(r, c)] = v;
        }
    }
    let coords = pca2(&data);

    // CSV dump.
    std::fs::create_dir_all("results").ok();
    let mut csv = std::fs::File::create("results/fig1.csv").expect("create csv");
    writeln!(csv, "pc1,pc2,nodes,has_stitch").expect("write");
    for (r, g) in graphs.iter().enumerate() {
        writeln!(
            csv,
            "{},{},{},{}",
            coords[(r, 0)],
            coords[(r, 1)],
            g.num_nodes(),
            g.has_stitches() as u8
        )
        .expect("write");
    }

    // ASCII scatter: markers by size class.
    let (w, h) = (72usize, 24usize);
    let (mut xmin, mut xmax, mut ymin, mut ymax) = (f32::MAX, f32::MIN, f32::MAX, f32::MIN);
    for r in 0..coords.rows() {
        xmin = xmin.min(coords[(r, 0)]);
        xmax = xmax.max(coords[(r, 0)]);
        ymin = ymin.min(coords[(r, 1)]);
        ymax = ymax.max(coords[(r, 1)]);
    }
    let mut grid = vec![vec![' '; w]; h];
    for (r, g) in graphs.iter().enumerate() {
        let x = ((coords[(r, 0)] - xmin) / (xmax - xmin).max(1e-9) * (w - 1) as f32) as usize;
        let y = ((coords[(r, 1)] - ymin) / (ymax - ymin).max(1e-9) * (h - 1) as f32) as usize;
        let marker = match g.num_nodes() {
            0..=6 => '.',
            7..=10 => 'o',
            _ => '#',
        };
        grid[h - 1 - y][x] = marker;
    }
    println!("Fig. 1: unit-graph embeddings projected to 2-D (PCA)");
    println!(
        "markers: '.' <=6 nodes, 'o' 7-10, '#' >10   ({} graphs)\n",
        graphs.len()
    );
    for row in grid {
        println!("{}", row.into_iter().collect::<String>());
    }
    println!("\ncoordinates written to results/fig1.csv");
}
