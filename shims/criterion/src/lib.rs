//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so this shim provides the
//! benchmarking surface the workspace uses: `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is auto-calibrated so one batch of
//! iterations runs long enough to be timeable (≥ ~25 ms), then several
//! batches are timed and the **median per-iteration wall time** is
//! reported. There is no statistical regression analysis or HTML report —
//! results are printed to stdout in a stable, greppable format:
//!
//! ```text
//! group/name/param        time: 123.45 µs/iter  (median of 5 batches)
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    /// When true (cargo test passes `--test`), benches are registered but
    /// not executed, matching real criterion's smoke-test behavior.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", name, self.test_mode, &mut f);
        self
    }
}

/// A named benchmark identifier with a parameter, e.g. `ilp/n<=9`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.test_mode, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", id.function, id.parameter);
        run_one(
            &self.name,
            &label,
            self.test_mode,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one(group: &str, label: &str, test_mode: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let full = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    if test_mode {
        // Real criterion's `--test` runs each benchmark exactly once, so
        // smoke runs compile AND exercise the benched code path.
        let mut bencher = Bencher {
            median_ns: None,
            batches: 0,
            test_mode: true,
        };
        f(&mut bencher);
        println!("{full}: ok (--test, 1 iteration)");
        return;
    }
    let mut bencher = Bencher {
        median_ns: None,
        batches: 0,
        test_mode: false,
    };
    f(&mut bencher);
    match bencher.median_ns {
        Some(ns) => println!(
            "{full:<48} time: {}/iter  (median of {} batches)",
            format_ns(ns),
            bencher.batches
        ),
        None => println!("{full:<48} time: <no iter() call>"),
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    median_ns: Option<f64>,
    batches: usize,
    test_mode: bool,
}

const TARGET_BATCH: Duration = Duration::from_millis(25);
const NUM_BATCHES: usize = 5;

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Calibrate: grow the batch size until one batch is long enough to
        // time reliably.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= TARGET_BATCH || iters >= 1 << 24 {
                break;
            }
            let grow = if elapsed.as_nanos() == 0 {
                16
            } else {
                ((TARGET_BATCH.as_nanos() / elapsed.as_nanos()) + 1).min(16) as u64
            };
            iters = iters.saturating_mul(grow.max(2));
        }
        // Measure.
        let mut samples = Vec::with_capacity(NUM_BATCHES);
        for _ in 0..NUM_BATCHES {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = Some(samples[samples.len() / 2]);
        self.batches = NUM_BATCHES;
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_a_median() {
        let mut b = Bencher {
            median_ns: None,
            batches: 0,
            test_mode: false,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(b.median_ns.is_some());
        assert_eq!(b.batches, NUM_BATCHES);
    }

    #[test]
    fn format_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
    }
}
