//! A sharded, lock-striped concurrent map keyed on exact graph
//! structure, for state shared across decomposition requests (the
//! cross-request embedding memo and the solved-unit cache).
//!
//! Keys are bucketed by [`graph_fingerprint`] into `RwLock`-guarded
//! shards (shard = low fingerprint bits), so readers of different shards
//! never contend and writers block only their own shard. Every hit is
//! verified with [`graphs_identical`] before it is served — a fingerprint
//! collision between structurally different graphs is *not* a hit, the
//! same contract as the per-request
//! [`EmbeddingMemo`](../../mpld/struct.EmbeddingMemo.html).
//!
//! Insertion is first-writer-wins: when two threads race to publish an
//! entry for the same graph, the loser's value is discarded and both
//! observe the winner's — so concurrent requests over identical traffic
//! converge on one shared entry and results stay independent of
//! interleaving.

use crate::fingerprint::{graph_fingerprint, graphs_identical};
use mpld_graph::LayoutGraph;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::RwLock;

/// Default shard count ([`ShardedGraphMap::new`]); enough stripes that a
/// handful of worker threads rarely collide, small enough to stay cheap
/// on a single-core host.
pub const DEFAULT_SHARDS: usize = 16;

type Bucket<V> = Vec<(LayoutGraph, V)>;
/// One lock stripe: fingerprint-keyed buckets of equality-checked entries.
type Shard<V> = RwLock<HashMap<u64, Bucket<V>>>;

/// Fingerprint-bucketed, equality-verified concurrent graph map (see
/// module docs).
#[derive(Debug)]
pub struct ShardedGraphMap<V> {
    /// Power-of-two shard array; a key's shard is `fingerprint & mask`.
    shards: Box<[Shard<V>]>,
    mask: u64,
    /// Soft entry cap; inserts beyond it evict an arbitrary entry from
    /// the inserting shard first (see [`ShardedGraphMap::insert`]).
    cap: Option<usize>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    entries: AtomicUsize,
    evictions: AtomicUsize,
    high_water: AtomicUsize,
}

/// Cumulative access counters of one [`ShardedGraphMap`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardedMapStats {
    /// Equality-verified lookups served from the map.
    pub hits: usize,
    /// Lookups that found no structurally identical entry.
    pub misses: usize,
    /// Distinct graphs currently stored.
    pub entries: usize,
    /// Entries evicted to hold the cap.
    pub evictions: usize,
    /// Largest entry count ever held.
    pub high_water: usize,
}

impl<V> Default for ShardedGraphMap<V> {
    fn default() -> Self {
        Self::new(DEFAULT_SHARDS)
    }
}

impl<V> ShardedGraphMap<V> {
    /// An empty map with `shards` stripes (rounded up to a power of two,
    /// minimum 1).
    pub fn new(shards: usize) -> Self {
        Self::with_capacity(shards, None)
    }

    /// An empty capped map: once `cap` entries are held, each insert
    /// first evicts one arbitrary entry from its own shard, so the map
    /// stays within `cap + shards - 1` entries under any traffic.
    pub fn with_capacity(shards: usize, cap: Option<usize>) -> Self {
        let n = shards.max(1).next_power_of_two();
        Self {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: (n - 1) as u64,
            cap,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            entries: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
        }
    }

    fn shard(&self, fp: u64) -> &Shard<V> {
        &self.shards[(fp & self.mask) as usize]
    }

    /// Number of distinct graphs stored.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the access counters.
    pub fn stats(&self) -> ShardedMapStats {
        ShardedMapStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
            evictions: self.evictions.load(Ordering::Relaxed),
            high_water: self.high_water.load(Ordering::Relaxed),
        }
    }
}

impl<V: Clone> ShardedGraphMap<V> {
    /// Equality-verified lookup: returns the stored value for a graph
    /// structurally identical to `g`, taking only its shard's read lock.
    /// A fingerprint match with a different graph is a miss.
    pub fn get(&self, g: &LayoutGraph) -> Option<V> {
        let fp = graph_fingerprint(g);
        let found = match self.shard(fp).read() {
            Ok(shard) => shard.get(&fp).and_then(|bucket| {
                bucket
                    .iter()
                    .find(|(rep, _)| graphs_identical(rep, g))
                    .map(|(_, v)| v.clone())
            }),
            Err(_) => None, // poisoned shard: treat as a miss
        };
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Publishes `value` for `g` unless a structurally identical entry
    /// already exists (first writer wins). Returns the value now stored —
    /// the existing one on a race — so every caller converges on one
    /// shared entry. An insert never displaces or loses an earlier one.
    pub fn insert(&self, g: &LayoutGraph, value: V) -> V {
        let fp = graph_fingerprint(g);
        let Ok(mut shard) = self.shard(fp).write() else {
            return value; // poisoned shard: the caller keeps its value
        };
        if let Some(bucket) = shard.get(&fp) {
            if let Some((_, existing)) = bucket.iter().find(|(rep, _)| graphs_identical(rep, g)) {
                return existing.clone();
            }
        }
        if self
            .cap
            .is_some_and(|cap| self.entries.load(Ordering::Relaxed) >= cap)
        {
            // At capacity: evict one arbitrary entry from this shard
            // before inserting. An empty shard overshoots by at most
            // `shards - 1` entries in total — bounded and lock-local,
            // which is the point (no global LRU bookkeeping on the hot
            // path).
            if let Some(victim_fp) = shard.keys().next().copied() {
                if let Some(bucket) = shard.get_mut(&victim_fp) {
                    if bucket.pop().is_some() {
                        if bucket.is_empty() {
                            shard.remove(&victim_fp);
                        }
                        self.entries.fetch_sub(1, Ordering::Relaxed);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        shard
            .entry(fp)
            .or_default()
            .push((g.clone(), value.clone()));
        let now = self.entries.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(now, Ordering::Relaxed);
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> LayoutGraph {
        LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn insert_then_get_round_trips() {
        let map: ShardedGraphMap<u32> = ShardedGraphMap::default();
        assert_eq!(map.get(&path3()), None);
        assert_eq!(map.insert(&path3(), 7), 7);
        assert_eq!(map.get(&path3()), Some(7));
        let s = map.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn first_writer_wins_on_identical_keys() {
        let map: ShardedGraphMap<u32> = ShardedGraphMap::new(4);
        assert_eq!(map.insert(&path3(), 1), 1);
        // The second writer observes the first value, nothing is lost.
        assert_eq!(map.insert(&path3(), 2), 1);
        assert_eq!(map.get(&path3()), Some(1));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn structurally_different_graphs_get_distinct_entries() {
        let map: ShardedGraphMap<&'static str> = ShardedGraphMap::new(1);
        // Isomorphic but not identical: same shape, different labeling.
        let a = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2)]).unwrap();
        let b = LayoutGraph::homogeneous(3, vec![(0, 2), (1, 2)]).unwrap();
        map.insert(&a, "a");
        assert_eq!(map.get(&b), None);
        map.insert(&b, "b");
        assert_eq!(map.get(&a), Some("a"));
        assert_eq!(map.get(&b), Some("b"));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn fingerprint_collision_is_rejected_by_equality_check() {
        // Force a synthetic collision by planting an entry under the
        // *wrong* bucket: get() must still refuse to serve a
        // structurally different graph whose fingerprints agree.
        let a = LayoutGraph::homogeneous(4, vec![(0, 1), (2, 3)]).unwrap();
        let b = LayoutGraph::homogeneous(4, vec![(0, 2), (1, 3)]).unwrap();
        let map: ShardedGraphMap<u32> = ShardedGraphMap::new(1);
        let fp_b = graph_fingerprint(&b);
        map.shard(fp_b)
            .write()
            .unwrap()
            .entry(fp_b)
            .or_default()
            .push((a.clone(), 3));
        assert_eq!(map.get(&b), None);
    }

    #[test]
    fn cap_evicts_and_tracks_high_water() {
        let map: ShardedGraphMap<usize> = ShardedGraphMap::with_capacity(1, Some(2));
        let graphs: Vec<LayoutGraph> = (2..6)
            .map(|n| LayoutGraph::homogeneous(n, vec![(0, 1)]).unwrap())
            .collect();
        for (i, g) in graphs.iter().enumerate() {
            map.insert(g, i);
        }
        let s = map.stats();
        assert_eq!(s.entries, 2, "{s:?}");
        assert_eq!(s.evictions, 2);
        assert_eq!(s.high_water, 2);
        // Re-inserting an identical graph neither grows nor evicts.
        map.insert(&graphs[3], 99);
        assert_eq!(map.stats().entries, 2);
    }

    #[test]
    fn uncapped_map_never_evicts() {
        let map: ShardedGraphMap<usize> = ShardedGraphMap::new(2);
        for n in 2..12 {
            map.insert(&LayoutGraph::homogeneous(n, vec![(0, 1)]).unwrap(), n);
        }
        let s = map.stats();
        assert_eq!(s.entries, 10);
        assert_eq!(s.evictions, 0);
        assert_eq!(s.high_water, 10);
    }

    #[test]
    fn single_shard_still_works() {
        let map: ShardedGraphMap<usize> = ShardedGraphMap::new(0);
        assert_eq!(map.shards.len(), 1);
        map.insert(&path3(), 9);
        assert_eq!(map.get(&path3()), Some(9));
    }
}
