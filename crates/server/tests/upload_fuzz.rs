//! Hostile-upload fuzzing: deterministic garbage, truncation, and
//! oversize attacks against `POST /decompose` must always produce a
//! fast typed response — no panic, no hang, no unbounded buffering —
//! and leave the server healthy.

mod util;

use mpld_layout::{circuit_by_name, write_layout, ReadLimits};
use mpld_server::{HttpLimits, ServerConfig};
use std::time::{Duration, Instant};
use util::{send_raw, tiny_engine, TestServer};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Resident set size in bytes, from /proc (0 where unavailable).
fn rss_bytes() -> u64 {
    let Ok(statm) = std::fs::read_to_string("/proc/self/statm") else {
        return 0;
    };
    statm
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse::<u64>().ok())
        .map(|pages| pages * 4096)
        .unwrap_or(0)
}

fn post_raw_upload(addr: std::net::SocketAddr, body: &[u8]) -> String {
    let mut raw = format!(
        "POST /decompose HTTP/1.1\r\nHost: fuzz\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    raw.extend_from_slice(body);
    send_raw(addr, &raw)
}

#[test]
fn hostile_uploads_never_panic_hang_or_balloon() {
    // Tight caps so the fuzz bodies cross every limit cheaply.
    let cfg = ServerConfig {
        workers: 2,
        queue_depth: 8,
        read_timeout: Duration::from_secs(5),
        http: HttpLimits {
            max_body_bytes: 64 << 10,
            ..HttpLimits::default()
        },
        upload: ReadLimits {
            max_line_bytes: 256,
            max_rects: 2000,
            max_features: 2000,
        },
        ..ServerConfig::default()
    };
    let server = TestServer::start(tiny_engine(true), cfg);
    let addr = server.addr;

    // A valid layout to mutate (truncations, splices).
    let layout = circuit_by_name("C432").expect("exists").generate();
    let mut valid = Vec::new();
    write_layout(&layout, &mut valid).expect("serialize");

    let rss_before = rss_bytes();
    let started = Instant::now();
    let mut responses = 0usize;

    for case in 0u64..60 {
        let h = splitmix64(0xF0CC ^ case);
        let body: Vec<u8> = match case % 6 {
            // Random binary garbage of varying size.
            0 => (0..(h % 4096))
                .map(|i| (splitmix64(h ^ i) & 0xFF) as u8)
                .collect(),
            // The valid layout truncated at a pseudo-random byte.
            1 => valid[..(h as usize % valid.len().max(1))].to_vec(),
            // Valid prefix spliced with garbage lines.
            2 => {
                let mut b = valid[..valid.len() / 3].to_vec();
                b.extend_from_slice(b"rect 1 2 NaN 4\nfeature -9\npoly\n");
                b
            }
            // A newline-free flood longer than the line cap.
            3 => std::iter::repeat_n(b'x', 1024 + (h as usize % 4096)).collect(),
            // A rect-count bomb within the body cap.
            4 => {
                let mut b =
                    b"# mpld layout interchange v1\nlayout bomb d=100\nfeature 0\n".to_vec();
                for i in 0..3000u32 {
                    b.extend_from_slice(
                        format!("rect {i} 0 {} 10\n", i + 1).into_bytes().as_slice(),
                    );
                }
                b
            }
            // Valid header, then tokens that parse as the wrong types.
            _ => b"# mpld layout interchange v1\nlayout x d=abc\nrect a b c d\n".to_vec(),
        };

        let r = post_raw_upload(addr, &body);
        assert!(
            !r.is_empty(),
            "case {case}: server dropped the connection silently"
        );
        // Every hostile body must resolve to a typed 4xx (a truncation
        // can also legitimately parse as a smaller valid layout → 200).
        assert!(
            r.starts_with("HTTP/1.1 400")
                || r.starts_with("HTTP/1.1 413")
                || r.starts_with("HTTP/1.1 200"),
            "case {case}: unexpected response {r}"
        );
        if r.starts_with("HTTP/1.1 400") {
            assert!(
                r.contains("\"error\":\"parse\"") || r.contains("\"error\":\""),
                "case {case}: 400 must be typed: {r}"
            );
        }
        responses += 1;
    }

    // Oversized declared body: rejected before any allocation.
    let r = send_raw(
        addr,
        b"POST /decompose HTTP/1.1\r\nHost: fuzz\r\nContent-Length: 999999999\r\n\r\n",
    );
    assert!(r.starts_with("HTTP/1.1 413"), "{r}");

    // No hang: 60+ hostile requests settle quickly.
    assert_eq!(responses, 60);
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "fuzz round took {:?}",
        started.elapsed()
    );

    // No panic anywhere in the worker pool, and memory stayed bounded:
    // caps hold every body to <=64 KiB, so RSS growth beyond a small
    // slack means something buffered without bound.
    let stats = send_raw(addr, b"GET /stats HTTP/1.1\r\nHost: fuzz\r\n\r\n");
    assert!(stats.contains("\"request_panics\":0"), "{stats}");
    assert!(
        stats.contains("\"status\"") || stats.starts_with("HTTP/1.1 200"),
        "{stats}"
    );
    let rss_after = rss_bytes();
    if rss_before > 0 && rss_after > 0 {
        let grown = rss_after.saturating_sub(rss_before);
        assert!(
            grown < 256 << 20,
            "RSS grew {} MiB across the fuzz round",
            grown >> 20
        );
    }

    // And an honest upload still works afterwards.
    let r = post_raw_upload(addr, &valid);
    assert!(
        r.starts_with("HTTP/1.1 200 OK") || r.starts_with("HTTP/1.1 400"),
        "{r}"
    );
    server.stop();
}

#[test]
fn parse_errors_carry_line_numbers() {
    let server = TestServer::start(tiny_engine(true), ServerConfig::default());
    let bad = "# mpld layout interchange v1\nlayout x d=100\nfeature 0\nrect 1 2 three 4\n";
    let r = post_raw_upload(server.addr, bad.as_bytes());
    assert!(r.starts_with("HTTP/1.1 400"), "{r}");
    assert!(r.contains("\"error\":\"parse\""), "{r}");
    assert!(r.contains("\"line\":4"), "{r}");
    server.stop();
}
