//! Criterion bench: graph-library matching versus decomposing from
//! scratch, plus the library-size ablation (`max_parent_size`), the
//! design choice DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpld_gnn::RgcnClassifier;
use mpld_graph::{DecomposeParams, Decomposer, LayoutGraph};
use mpld_ilp::IlpDecomposer;
use mpld_matching::{GraphLibrary, LibraryConfig};

fn library_sized_graphs() -> Vec<LayoutGraph> {
    // Relabeled copies of irreducible graphs (worst case: full match path).
    mpld_matching::enumerate_parent_graphs(6, 3)
        .into_iter()
        .map(|g| {
            let n = g.num_nodes() as u32;
            let relabel: Vec<u32> = (0..n).map(|v| (v + 1) % n).collect();
            let edges = g
                .conflict_edges()
                .iter()
                .map(|&(a, b)| (relabel[a as usize], relabel[b as usize]))
                .collect();
            LayoutGraph::homogeneous(g.num_nodes(), edges).expect("relabel is valid")
        })
        .collect()
}

fn bench_matching(c: &mut Criterion) {
    let params = DecomposeParams::tpl();
    let graphs = library_sized_graphs();
    let mut group = c.benchmark_group("matching");

    let embedder = RgcnClassifier::selector(3);
    let lib = GraphLibrary::build(
        &embedder,
        &LibraryConfig {
            stitches: false,
            ..LibraryConfig::default()
        },
        &params,
    );
    group.bench_function("library_lookup", |b| {
        b.iter(|| {
            let mut hits = 0;
            for g in &graphs {
                if lib.lookup(&embedder, g).is_some() {
                    hits += 1;
                }
            }
            assert_eq!(hits, graphs.len());
            hits
        })
    });

    let ilp = IlpDecomposer::new();
    group.bench_function("ilp_from_scratch", |b| {
        b.iter(|| {
            let mut total = 0u32;
            for g in &graphs {
                total += ilp.decompose_unbounded(g, &params).cost.conflicts;
            }
            total
        })
    });

    // Ablation: library construction cost versus max parent size.
    for max in [4usize, 5, 6] {
        group.bench_with_input(BenchmarkId::new("build", max), &max, |b, &max| {
            b.iter(|| {
                let embedder = RgcnClassifier::selector(3);
                let cfg = LibraryConfig {
                    max_parent_size: max,
                    max_splits: 1,
                    max_nodes: max + 1,
                    stitches: true,
                };
                GraphLibrary::build(&embedder, &cfg, &params).len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
