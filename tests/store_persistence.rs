//! The persistent store end to end: a warm second process (modeled as a
//! second store-backed [`Engine`] over the same model bytes) must serve
//! the suite with zero fresh ILP/EC-tail solves and a bit-identical
//! digest, and every corruption-matrix case — torn tail, bit-flipped
//! record, stale model fingerprint, header param mismatch — must load
//! degraded (counted) and still reproduce the serial oracle exactly.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use mpld::{
    engine_with_store, prepare, train_framework, AdaptiveResult, Engine, OfflineConfig,
    PreparedLayout, Session, TrainingData,
};
use mpld_graph::DecomposeParams;
use mpld_layout::circuit_by_name;
use mpld_store::StoreCaps;

const SEED: u64 = 0xD15EA5E;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("mpld-storetest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
    fn path(&self) -> &Path {
        &self.0
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn offline_config() -> OfflineConfig {
    let mut cfg = OfflineConfig::default();
    cfg.rgcn.epochs = 2;
    cfg.colorgnn.epochs = 1;
    cfg
}

/// Model bytes + test layout + serial oracle, built once for the file.
fn fixture() -> &'static (Vec<u8>, PreparedLayout, AdaptiveResult, DecomposeParams) {
    static FIXTURE: OnceLock<(Vec<u8>, PreparedLayout, AdaptiveResult, DecomposeParams)> =
        OnceLock::new();
    FIXTURE.get_or_init(|| {
        let params = DecomposeParams::tpl();
        let layout = circuit_by_name("C499").expect("exists").generate();
        let prep = prepare(&layout, &params);
        let mut data = TrainingData::default();
        data.add_layout_capped(&prep, &params, 40);
        let fw = train_framework(&data, &params, &offline_config());
        let mut bytes = Vec::new();
        fw.save(&mut bytes).expect("serialize to Vec");
        let test = prepare(
            &circuit_by_name("C432").expect("exists").generate(),
            &params,
        );
        fw.colorgnn.reseed(SEED);
        let serial = fw.decompose_prepared(&test);
        (bytes, test, serial, params)
    })
}

/// Everything that must be independent of caches and store state.
fn digest(r: &AdaptiveResult) -> impl PartialEq + std::fmt::Debug + '_ {
    (
        &r.pipeline.decomposition,
        r.pipeline.cost,
        &r.unit_engines,
        r.usage,
        r.budget,
    )
}

/// Tail solves actually performed (not served from cache or journal).
fn fresh_tail_solves(r: &AdaptiveResult) -> usize {
    r.usage.ilp + r.usage.ec - r.memo_hits - r.resumed_units
}

fn store_engine(dir: &Path) -> Engine {
    let (bytes, _, _, params) = fixture();
    let (engine, _) = engine_with_store(
        bytes,
        params,
        &offline_config(),
        dir,
        StoreCaps::default(),
        None,
    )
    .expect("store opens");
    engine
}

fn run(engine: &Engine) -> AdaptiveResult {
    let (_, test, _, _) = fixture();
    let mut session = Session::new(SEED);
    engine.decompose(test, &mut session).expect("decomposes")
}

fn store_file(dir: &Path) -> PathBuf {
    let files = mpld_store::scan_dir(dir).unwrap();
    assert_eq!(files.len(), 1, "expected exactly one store file");
    files[0].path.clone()
}

#[test]
fn warm_process_serves_suite_with_zero_fresh_tail_solves() {
    let (_, _, serial, _) = fixture();
    let dir = TempDir::new("warm");

    // Cold process: populates the store.
    let cold_engine = store_engine(dir.path());
    let cold_stats = cold_engine.stats().store.expect("store attached");
    assert!(
        !cold_stats.lib_loaded,
        "first process must build the library"
    );
    let cold = run(&cold_engine);
    assert_eq!(digest(&cold), digest(serial));
    let cold_fresh = fresh_tail_solves(&cold);
    drop(cold_engine); // flushes

    // Warm process: same model bytes, fresh Engine, loaded store.
    let warm_engine = store_engine(dir.path());
    let warm_stats = warm_engine.stats().store.expect("store attached");
    assert!(warm_stats.lib_loaded, "library must come from the store");
    assert_eq!(
        warm_stats.loaded_solves, cold_fresh,
        "every cold solve persisted"
    );
    assert!(!warm_stats.rekeyed);
    let warm = run(&warm_engine);
    assert_eq!(digest(&warm), digest(serial), "warm digest drifted");
    assert_eq!(
        fresh_tail_solves(&warm),
        0,
        "a warm process must serve the suite entirely from the store"
    );
    // Nothing new to append: the flywheel converged.
    assert_eq!(warm_engine.stats().store.unwrap().appended, 0);
}

#[test]
fn torn_tail_loads_degraded_and_stays_bit_identical() {
    let (_, _, serial, _) = fixture();
    let dir = TempDir::new("torn");
    let cold = {
        let engine = store_engine(dir.path());
        run(&engine)
    };
    assert_eq!(digest(&cold), digest(serial));
    // Tear the final record mid-line, as kill -9 during an append would.
    let path = store_file(dir.path());
    let bytes = std::fs::read(&path).unwrap();
    let cut = bytes.len() - bytes.len().min(40);
    std::fs::write(&path, &bytes[..cut.max(1)]).unwrap();

    let engine = store_engine(dir.path());
    let stats = engine.stats().store.unwrap();
    assert!(
        stats.torn_tail || stats.skipped_corrupt > 0,
        "the tear must be observed: {stats:?}"
    );
    let r = run(&engine);
    assert_eq!(digest(&r), digest(serial), "torn store changed the answer");
}

#[test]
fn bit_flipped_record_is_skipped_never_served() {
    let (_, _, serial, _) = fixture();
    let dir = TempDir::new("flip");
    {
        let engine = store_engine(dir.path());
        run(&engine);
    }
    let path = store_file(dir.path());
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip a byte inside the last complete record line.
    let line_starts: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| (b == b'\n').then_some(i + 1))
        .collect();
    let target = line_starts[line_starts.len() - 2] + 12;
    bytes[target] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();

    let engine = store_engine(dir.path());
    let r = run(&engine);
    assert_eq!(digest(&r), digest(serial), "bit flip changed the answer");
}

#[test]
fn stale_model_fingerprint_never_matches() {
    let (bytes, _, serial, params) = fixture();
    let dir = TempDir::new("stale");
    {
        let engine = store_engine(dir.path());
        run(&engine);
    }
    // "Retrain": perturb one weight byte past the header. The digest
    // changes, so the stale store file must never be consulted.
    let mut retrained = bytes.clone();
    let last = retrained.len() - 1;
    retrained[last] ^= 1;
    let (engine, report) = engine_with_store(
        &retrained,
        params,
        &offline_config(),
        dir.path(),
        StoreCaps::default(),
        None,
    )
    .expect("opens under the new key");
    assert_eq!(report.solves, 0, "stale solves served under a new model");
    let stats = engine.stats().store.unwrap();
    assert!(!stats.lib_loaded);
    assert_eq!(stats.loaded_solves, 0);
    // Both keyed files now coexist: provenance separates them.
    assert_eq!(mpld_store::scan_dir(dir.path()).unwrap().len(), 2);
    // And the old model still warm-loads its own file with a clean digest.
    let warm = store_engine(dir.path());
    assert!(warm.stats().store.unwrap().lib_loaded);
    let r = run(&warm);
    assert_eq!(digest(&r), digest(serial));
}

#[test]
fn header_param_mismatch_rekeys_and_rebuilds() {
    let (_, _, serial, _) = fixture();
    let dir = TempDir::new("hdrparam");
    {
        let engine = store_engine(dir.path());
        run(&engine);
    }
    // Corrupt the header's alpha bits in place (same file name): the
    // loader must refuse the whole file and move it aside.
    let path = store_file(dir.path());
    let content = std::fs::read_to_string(&path).unwrap();
    let mangled = content.replacen("\"alpha_bits\":\"", "\"alpha_bits\":\"f", 1);
    assert_ne!(content, mangled, "fixture header had no alpha_bits field");
    std::fs::write(&path, mangled).unwrap();

    let engine = store_engine(dir.path());
    let stats = engine.stats().store.unwrap();
    assert!(stats.rekeyed, "param mismatch must re-key: {stats:?}");
    assert_eq!(stats.loaded_solves, 0);
    assert!(!stats.lib_loaded);
    let r = run(&engine);
    assert_eq!(digest(&r), digest(serial));
    // The mismatched file was preserved as .stale, not deleted.
    let stale = std::fs::read_dir(dir.path())
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "stale"))
        .count();
    assert_eq!(stale, 1);
}

#[test]
fn compaction_preserves_warm_parity() {
    let (_, _, serial, _) = fixture();
    let dir = TempDir::new("compactparity");
    {
        let engine = store_engine(dir.path());
        run(&engine);
    }
    // Run a second cold-ish process to create room for duplicates, then
    // compact and confirm the compacted store still serves everything.
    {
        let engine = store_engine(dir.path());
        run(&engine);
    }
    let path = store_file(dir.path());
    let (report, clean) = mpld_store::compact_and_verify(&path).unwrap();
    assert!(clean, "compacted store fails verify: {report:?}");
    let engine = store_engine(dir.path());
    let stats = engine.stats().store.unwrap();
    assert!(stats.lib_loaded);
    let r = run(&engine);
    assert_eq!(digest(&r), digest(serial));
    assert_eq!(fresh_tail_solves(&r), 0);
}

/// An entry-capped store-backed engine still answers correctly — caps
/// shed warmth, not correctness.
#[test]
fn capped_store_and_cache_stay_correct() {
    let (bytes, _, serial, params) = fixture();
    let dir = TempDir::new("capped");
    let caps = StoreCaps {
        max_entries: Some(2),
        max_bytes: None,
    };
    let (engine, _) =
        engine_with_store(bytes, params, &offline_config(), dir.path(), caps, Some(4))
            .expect("store opens");
    let r = run(&engine);
    assert_eq!(digest(&r), digest(serial));
    let stats = engine.stats().store.unwrap();
    assert!(stats.entries <= 2, "store cap exceeded: {stats:?}");
    drop(engine);
    let (engine2, report) =
        engine_with_store(bytes, params, &offline_config(), dir.path(), caps, Some(4))
            .expect("store reopens");
    assert!(report.solves <= 2);
    let r2 = run(&engine2);
    assert_eq!(digest(&r2), digest(serial));
}
