//! Regression test for the vacuous-margin-loss bug: with unnormalized
//! belief dynamics, magnitudes grew so fast that every pairwise distance
//! exceeded the margin and training never updated the lambdas.

use mpld_gnn::{ColorGnn, ColorGnnTrainConfig};
use mpld_graph::LayoutGraph;

fn k4() -> LayoutGraph {
    LayoutGraph::homogeneous(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap()
}

fn wheel(rim: usize) -> LayoutGraph {
    // Hub 0 plus a rim cycle 1..=rim.
    let mut edges: Vec<(u32, u32)> = (1..=rim as u32).map(|v| (0, v)).collect();
    for i in 0..rim as u32 {
        edges.push((1 + i, 1 + (i + 1) % rim as u32));
    }
    LayoutGraph::homogeneous(rim + 1, edges).unwrap()
}

#[test]
fn margin_loss_is_not_vacuous_and_lambdas_move() {
    let graphs = [k4(), wheel(4), wheel(6), k4()];
    let refs: Vec<&LayoutGraph> = graphs.iter().collect();
    let mut gnn = ColorGnn::new(3);
    let before = gnn.lambda_values();
    let first = gnn.train(
        &refs,
        3,
        &ColorGnnTrainConfig {
            epochs: 1,
            lr: 0.02,
            margin: 1.0,
            batch: 1,
        },
    );
    assert!(first > 1e-4, "margin loss is vacuous again: {first}");
    gnn.train(
        &refs,
        3,
        &ColorGnnTrainConfig {
            epochs: 30,
            lr: 0.02,
            margin: 1.0,
            batch: 1,
        },
    );
    let after = gnn.lambda_values();
    assert_ne!(before, after, "lambdas did not move");
}
