//! Table II — summary of the GNNs used in the framework: purpose, input,
//! architecture, readout, loss, and the measured parameter counts of this
//! implementation.

use mpld_bench::print_table;
use mpld_gnn::{ColorGnn, GcnClassifier, RgcnClassifier};

fn main() {
    let rgcn = RgcnClassifier::selector(0);
    let rgcn_r = RgcnClassifier::redundancy(0);
    let gcn = GcnClassifier::selector(0);
    let colorgnn = ColorGnn::new(0);

    println!("Table II: GNNs used in the framework\n");
    print_table(
        &["model", "task", "backbone", "readout", "loss", "weights"],
        &[
            vec![
                "RGCN".into(),
                "ILP/EC selection + embeddings for matching".into(),
                "2-layer RGCN (basis decomp.), dims 1-32-64".into(),
                "sum".into(),
                "cross-entropy".into(),
                rgcn.num_weights().to_string(),
            ],
            vec![
                "RGCN_r".into(),
                "stitch-redundancy prediction".into(),
                "2-layer RGCN (basis decomp.), dims 1-32-64".into(),
                "max".into(),
                "cross-entropy".into(),
                rgcn_r.num_weights().to_string(),
            ],
            vec![
                "ColorGNN".into(),
                "non-stitch decomposition".into(),
                format!("{}-layer weighted message passing", colorgnn.num_layers()),
                "argmax per node".into(),
                "margin (Eq. 14)".into(),
                (colorgnn.num_layers() * 2).to_string(),
            ],
            vec![
                "GCN (baseline)".into(),
                "Table III comparison".into(),
                "2-layer GCN, fixed edge weights".into(),
                "sum".into(),
                "cross-entropy".into(),
                gcn.num_weights().to_string(),
            ],
        ],
    );
    println!(
        "\nembedding dimension {} (paper: 64); ColorGNN restarts {} (paper iter = 5,\nsee DESIGN.md deviation 3)",
        rgcn.embedding_dim(),
        colorgnn.restarts()
    );
}
