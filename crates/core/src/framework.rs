//! The adaptive decomposition framework (Fig. 7 of the paper).
//!
//! Per simplified unit graph, the online flow is:
//!
//! 1. **Graph matching** — small graphs are matched against the
//!    isomorphism-free library; hits return the stored optimal coloring.
//! 2. **Stitch redundancy prediction** — `RGCN_r` predicts whether all
//!    stitch candidates are redundant; above the confidence bar the stitch
//!    edges are merged and the non-stitch parent graph goes to ColorGNN.
//! 3. **Decomposer selection** — otherwise the selector RGCN routes the
//!    graph to the exact ILP engine or the fast EC engine.
//!
//! Runtime is accounted per category so Fig. 9 (runtime breakdown) and
//! Fig. 10 (usage breakdown) can be reproduced.

use crate::checkpoint::{unit_fingerprint, Checkpoint, CheckpointEntry, JournalWriter};
use crate::engine::{RoutingEntry, SharedRoutingMemo};
use crate::memo::{BatchPlan, EmbeddingMemo, DEFAULT_MAX_BATCH_NODES};
use crate::parallel::{panic_payload_string, run_largest_first_quarantined};
use crate::pipeline::{assemble, PipelineResult, PreparedLayout};
use mpld_ec::EcDecomposer;
use mpld_gnn::{ColorGnn, FrozenColorGnn, FrozenRgcn, InferBatch, RgcnClassifier};
use mpld_graph::{
    audit_coloring, audit_decomposition, greedy_coloring, Budget, CancelToken, Certainty, Clock,
    DecomposeParams, Decomposer, Decomposition, LayoutGraph, MpldError, SystemClock,
};
use mpld_ilp::encode::BipDecomposer;
use mpld_matching::{canonical_form_labeled, CanonicalForm, GraphLibrary};
use mpld_tensor::{quant, Matrix, Precision};
use rand::rngs::SmallRng;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Largest unit eligible for the session memo cache: the exact canonical
/// form in `mpld-matching` is factorial-guarded at 12 nodes.
const MEMO_MAX_NODES: usize = 12;

/// Trust margins for the quantized routing lane: a quantized routing
/// probability within this distance of its decision threshold
/// ([`AdaptiveFramework::ec_threshold`] /
/// [`AdaptiveFramework::redundancy_bar`]) is re-inferred at f32 before
/// any decision is taken. Calibrated an order of magnitude above the
/// probability drift the quantized planes show on the benchmark suite
/// (the `quant_parity` property tests bound the *worst-case* drift over
/// random weights much higher; trained heads sit far inside it), and the
/// CI perf-digest guard independently asserts that quantized routing
/// reproduces the f32 decisions circuit for circuit.
const F16_TRUST_MARGIN: f32 = 5e-3;
/// See [`F16_TRUST_MARGIN`].
const INT8_TRUST_MARGIN: f32 = 2.5e-2;

/// Wall-clock limits for one adaptive decomposition run.
///
/// `total` bounds the whole run; `per_unit` additionally bounds each
/// unit's exact-solver time (each unit still gets at most the remaining
/// layout-wide budget). `cancel` aborts cooperatively from another
/// thread. `clock` overrides the time source (a
/// [`MockClock`](mpld_graph::MockClock) makes timeout tests
/// deterministic); `None` uses real wall-clock time.
///
/// The default policy is unlimited, and an unlimited policy is guaranteed
/// to produce bit-identical results to the budget-free code path.
#[derive(Debug, Clone, Default)]
pub struct BudgetPolicy {
    /// Layout-wide wall-clock limit.
    pub total: Option<Duration>,
    /// Per-unit wall-clock limit for the exact ILP/EC tail.
    pub per_unit: Option<Duration>,
    /// Cooperative cancellation shared with the caller.
    pub cancel: Option<CancelToken>,
    /// Time source; `None` means a fresh [`SystemClock`].
    pub clock: Option<Arc<dyn Clock>>,
}

impl BudgetPolicy {
    /// No limits.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Whether no limit of any kind is configured.
    pub fn is_unlimited(&self) -> bool {
        self.total.is_none() && self.per_unit.is_none() && self.cancel.is_none()
    }

    /// The layout-wide budget this policy describes, anchored at "now" on
    /// the policy's clock.
    pub(crate) fn total_budget(&self) -> Budget {
        if self.is_unlimited() {
            return Budget::unlimited();
        }
        let clock: Arc<dyn Clock> = self
            .clock
            .clone()
            .unwrap_or_else(|| Arc::new(SystemClock::new()));
        let mut b = match self.total {
            Some(limit) => Budget::with_deadline_on(clock, limit),
            None => Budget::on_clock(clock),
        };
        if let Some(t) = &self.cancel {
            b = b.and_cancel(t.clone());
        }
        b
    }

    /// The budget for one unit solve starting now: the per-unit limit
    /// narrowed against whatever remains of `total`.
    pub(crate) fn unit_budget(&self, total: &Budget) -> Budget {
        match self.per_unit {
            Some(limit) => total.narrowed(Some(limit), None),
            None => total.clone(),
        }
    }
}

/// Per-unit record of how a unit was decomposed (tentpole stats: solver
/// used, certification, budget effects, exact-solver time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitOutcome {
    /// Engine whose coloring was kept.
    pub engine: EngineKind,
    /// How much that engine vouches for the result.
    pub certainty: Certainty,
    /// Whether the exact path was cut short by the budget and a cheaper
    /// engine's (or unverified) result was used instead.
    pub budget_fallback: bool,
    /// Exact-solver (ILP + EC) time spent on this unit. Zero for units
    /// resolved by matching, batched ColorGNN, or memo transfer, whose
    /// cost is accounted in [`TimingBreakdown`] only.
    pub time: Duration,
    /// Whether the independent audit rejected at least one candidate
    /// result for this unit (the kept result is the re-routed recovery).
    pub audit_rejected: bool,
}

/// Aggregate budget statistics over one adaptive run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetBreakdown {
    /// Units whose result carries an optimality certificate.
    pub certified: usize,
    /// Units resolved heuristically (ColorGNN / uncertified EC).
    pub heuristic: usize,
    /// Units whose search was cut short by the budget (best-so-far
    /// incumbent kept).
    pub budget_exhausted: usize,
    /// Units that fell back to a cheaper engine (or skipped exact
    /// verification) because the budget expired mid-solve.
    pub budget_fallbacks: usize,
    /// Units quarantined with a greedy-fallback coloring after their
    /// routed engine panicked or kept failing the independent audit
    /// ([`Certainty::Degraded`]).
    pub quarantined: usize,
    /// Units for which the independent audit rejected at least one
    /// candidate result (the kept result is the re-routed recovery).
    pub audit_rejections: usize,
}

impl BudgetBreakdown {
    fn from_outcomes(outcomes: &[UnitOutcome]) -> Self {
        let mut b = BudgetBreakdown::default();
        for o in outcomes {
            match o.certainty {
                Certainty::Certified => b.certified += 1,
                Certainty::Heuristic => b.heuristic += 1,
                Certainty::BudgetExhausted => b.budget_exhausted += 1,
                Certainty::Degraded => b.quarantined += 1,
            }
            if o.budget_fallback {
                b.budget_fallbacks += 1;
            }
            if o.audit_rejected {
                b.audit_rejections += 1;
            }
        }
        b
    }
}

/// Statistics of the tape-free routing-inference engine for one adaptive
/// run: how much work the embedding memo deduplicated away and how much
/// scratch memory the frozen forwards touched.
///
/// Always zero on the unbatched comparison path
/// ([`AdaptiveFramework::decompose_prepared_unbatched`]), which keeps the
/// per-unit autodiff-tape forwards as the reference implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InferenceStats {
    /// Units whose selector/redundancy inference was served from the
    /// embedding memo (structurally identical to an earlier unit of the
    /// same layout) instead of a fresh forward pass.
    pub memo_hits: usize,
    /// Distinct representative units actually run through the frozen
    /// RGCN forwards (`memo_hits + shared_memo_hits + units_inferred` =
    /// total units).
    pub units_inferred: usize,
    /// Representatives served bit-identically from the engine's
    /// cross-request routing memo instead of a fresh forward pass.
    /// Always zero on the per-request framework entry points; only the
    /// shared [`Engine`](crate::Engine) path populates it.
    pub shared_memo_hits: usize,
    /// High-water mark of frozen scratch-buffer bytes across both RGCN
    /// heads (the steady-state inference memory footprint).
    pub scratch_high_water_bytes: usize,
    /// Numeric precision the routing forwards ran at
    /// ([`AdaptiveFramework::precision`]).
    pub precision: Precision,
    /// Representatives whose *accepted* routing scores came from the
    /// quantized plane (quantized lane minus fallbacks).
    pub quantized_units: usize,
    /// Representatives pinned to the f32 lane because the graph library
    /// holds a size-compatible entry (the cosine prefilter there cannot
    /// tolerate quantization noise).
    pub pinned_f32: usize,
    /// Quantized-lane representatives whose routing score landed inside
    /// the trust margin (or hit the `route.quant_trust` failpoint) and
    /// were transparently re-inferred at f32.
    pub f32_fallbacks: usize,
    /// Dispatch-selected f32 kernel name (e.g. `"avx2fma"`).
    pub kernel_f32: &'static str,
    /// Dispatch-selected kernel name for the active precision (e.g.
    /// `"avx512-q8"`; equals `kernel_f32` when `precision` is `F32`).
    pub kernel_quant: &'static str,
    /// Inference batches the bucketed planner emitted across both lanes.
    pub batches_planned: usize,
    /// Estimated transient backbone scratch (bytes) of the single-union
    /// batch the planner replaced.
    pub padding_waste_before_bytes: usize,
    /// Estimated transient backbone scratch (bytes) of the largest batch
    /// actually run under the plan.
    pub padding_waste_after_bytes: usize,
}

/// Which engine decomposed a unit (for Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Library graph matching.
    Matching,
    /// The non-stitch GNN decomposer.
    ColorGnn,
    /// Exact ILP.
    Ilp,
    /// Exact cover.
    Ec,
}

/// Usage counts per engine (Fig. 10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UsageBreakdown {
    /// Units decomposed by library matching.
    pub matching: usize,
    /// Units decomposed by ColorGNN.
    pub colorgnn: usize,
    /// Units decomposed by ILP.
    pub ilp: usize,
    /// Units decomposed by EC.
    pub ec: usize,
    /// ColorGNN attempts that left conflicts and fell back to ILP/EC
    /// (engineering guard, documented in DESIGN.md; counted under the
    /// engine that produced the final result).
    pub colorgnn_fallbacks: usize,
}

/// Cumulative runtime per category (Fig. 9).
#[derive(Debug, Clone, Copy, Default)]
pub struct TimingBreakdown {
    /// Embedding + library matching time.
    pub matching: Duration,
    /// Selector inference time.
    pub selection: Duration,
    /// Redundancy-prediction inference time.
    pub redundancy: Duration,
    /// ColorGNN decomposition time.
    pub colorgnn: Duration,
    /// ILP decomposition time.
    pub ilp: Duration,
    /// EC decomposition time.
    pub ec: Duration,
}

impl TimingBreakdown {
    /// Total accounted runtime.
    pub fn total(&self) -> Duration {
        self.matching + self.selection + self.redundancy + self.colorgnn + self.ilp + self.ec
    }
}

/// Result of adaptively decomposing one prepared layout.
#[derive(Debug)]
pub struct AdaptiveResult {
    /// The standard pipeline result (cost, coloring, pure decompose time).
    pub pipeline: PipelineResult,
    /// Engine usage counts.
    pub usage: UsageBreakdown,
    /// Runtime per category.
    pub timing: TimingBreakdown,
    /// Which engine handled each unit.
    pub unit_engines: Vec<EngineKind>,
    /// ILP/EC-tail units resolved by transferring an isomorphic unit's
    /// solution from the session memo cache (parallel path only; always
    /// zero on the serial paths).
    pub memo_hits: usize,
    /// Routing-inference statistics (embedding memo, frozen scratch).
    pub inference: InferenceStats,
    /// Per-unit outcome records, parallel to `unit_engines`.
    pub unit_outcomes: Vec<UnitOutcome>,
    /// Aggregate budget statistics derived from `unit_outcomes`.
    pub budget: BudgetBreakdown,
    /// Units whose routed solve panicked or errored and were quarantined
    /// with a greedy-fallback coloring: `(unit index, recorded fault)`.
    pub quarantines: Vec<(usize, MpldError)>,
    /// ILP/EC-tail units restored from a checkpoint journal instead of
    /// being re-solved (see [`Recovery`]).
    pub resumed_units: usize,
}

/// Checkpoint hookup for
/// [`AdaptiveFramework::decompose_prepared_parallel_recoverable`]: an
/// optional journal of a previous (killed) run to resume from, and an
/// optional writer recording this run's ILP/EC-tail solves as they
/// complete.
///
/// Resumed entries are never trusted blindly: each one is audited against
/// the present unit graph (structural fingerprint, coloring validity, and
/// recorded-vs-recomputed cost) and silently re-solved on any mismatch.
#[derive(Debug, Default, Clone, Copy)]
pub struct Recovery<'a> {
    /// Journal of a previous run to resume from.
    pub resume: Option<&'a Checkpoint>,
    /// Journal writer for this run's tail solves.
    pub journal: Option<&'a JournalWriter>,
}

/// One guarded ILP/EC-tail solve: the kept decomposition plus the fault
/// bookkeeping the framework folds into the layout-level result.
pub(crate) struct UnitSolve {
    pub(crate) d: Decomposition,
    pub(crate) engine: EngineKind,
    pub(crate) budget_fallback: bool,
    pub(crate) audit_rejected: bool,
    pub(crate) quarantine: Option<MpldError>,
}

/// The trained adaptive framework (see module docs).
pub struct AdaptiveFramework {
    /// Selector RGCN (`RGCN` in the paper).
    pub selector: RgcnClassifier,
    /// Stitch-redundancy RGCN (`RGCN_r`).
    pub redundancy: RgcnClassifier,
    /// The non-stitch GNN decomposer.
    pub colorgnn: ColorGnn,
    /// The isomorphism-free graph library.
    pub library: GraphLibrary,
    /// Exact engine — the same faithful Eq. (3) ILP used as the baseline
    /// column in Tables IV/V, so the framework's speedup comes from
    /// *routing*, not from a faster exact solver.
    pub ilp: BipDecomposer,
    /// Fast engine.
    pub ec: EcDecomposer,
    /// Decomposition parameters (k, alpha).
    pub params: DecomposeParams,
    /// Confidence bar `b` for redundancy prediction (paper: 0.99).
    pub redundancy_bar: f32,
    /// Minimum selector confidence required to route a graph to the
    /// (fast but possibly suboptimal) EC engine (default 0.9); below it the exact ILP
    /// runs. Mirrors the paper's emphasis on perfect ILP recall.
    pub ec_threshold: f32,
    /// Whether ColorGNN is enabled ("Ours w. GNN" vs plain "Ours").
    pub use_colorgnn: bool,
    /// Numeric precision of the batched routing forwards (selector +
    /// redundancy heads). `F16`/`Int8` run the quantized weight planes
    /// with a trust ladder: library-eligible units stay pinned at f32,
    /// and any quantized score inside its trust margin is transparently
    /// re-inferred at f32, so routing *decisions* match the f32 run.
    /// ColorGNN and the unbatched comparison path always run f32.
    pub precision: Precision,
}

impl AdaptiveFramework {
    /// Predicted probability that all stitch candidates of `g` are
    /// redundant.
    pub fn redundancy_confidence(&self, g: &LayoutGraph) -> f32 {
        // Class 0 = "redundant" by the training-label convention.
        self.redundancy.predict(g)[0]
    }

    /// Selector decision for `g`: 0 = ILP, 1 = EC (requires the EC
    /// confidence to clear [`AdaptiveFramework::ec_threshold`]).
    pub fn select_engine(&self, g: &LayoutGraph) -> u8 {
        let p = self.selector.predict(g);
        u8::from(p[1] > self.ec_threshold)
    }

    /// Exact-or-certified decomposition of one unit: when `ec_first`, run
    /// the fast EC engine and accept its result only when it carries an
    /// optimality certificate (see `EcDecomposer::decompose_certified`).
    /// Everything else is decided by (or verified against) the exact ILP.
    /// This is the structural version of the paper's 100%-ILP-recall
    /// selector.
    ///
    /// Anytime behavior under `budget`: if the exact ILP runs out of
    /// budget it returns its incumbent, and the framework falls back to
    /// the next-cheapest engine (EC's greedy + repair phase runs even on
    /// an expired budget) keeping whichever result is cheaper. The third
    /// tuple element reports whether such a budget fallback occurred.
    fn decompose_with_selection(
        &self,
        g: &LayoutGraph,
        ec_first: bool,
        budget: &Budget,
        timing: &mut TimingBreakdown,
    ) -> Result<(Decomposition, EngineKind, bool), MpldError> {
        if ec_first {
            let t = Instant::now();
            let (d, certified) = self.ec.decompose_certified(g, &self.params, budget)?;
            timing.ec += t.elapsed();
            if certified {
                return Ok((d, EngineKind::Ec, false));
            }
            if budget.exhausted() {
                // No budget left for exact verification: keep the EC
                // incumbent, flagged as budget-limited.
                return Ok((
                    d.with_certainty(Certainty::BudgetExhausted),
                    EngineKind::Ec,
                    true,
                ));
            }
            // Verify the uncertified EC result against the exact ILP with
            // the EC cost as the branch-and-bound's starting incumbent:
            // `None` proves the EC result optimal without the cold search
            // ever having to rediscover a solution of that quality.
            let t = Instant::now();
            let (exact, ilp_exhausted) =
                self.ilp
                    .decompose_below_within(g, &self.params, &d.cost, budget);
            timing.ilp += t.elapsed();
            if let Some(exact) = exact {
                if exact.cost.better_than(&d.cost, self.params.alpha) {
                    return Ok((exact, EngineKind::Ilp, ilp_exhausted));
                }
            }
            // An exhausted verification proves nothing: the EC result
            // stands but without a certificate.
            let d = if ilp_exhausted {
                d.with_certainty(Certainty::BudgetExhausted)
            } else {
                d
            };
            Ok((d, EngineKind::Ec, ilp_exhausted))
        } else {
            let t = Instant::now();
            let d = self.ilp.decompose(g, &self.params, budget)?;
            timing.ilp += t.elapsed();
            if d.certainty != Certainty::BudgetExhausted {
                return Ok((d, EngineKind::Ilp, false));
            }
            // The exact solver timed out on its incumbent: fall back to
            // the next-cheapest engine and keep the better coloring.
            let t = Instant::now();
            let fallback = self.ec.decompose_certified(g, &self.params, budget);
            timing.ec += t.elapsed();
            match fallback {
                Ok((e, _)) if e.cost.better_than(&d.cost, self.params.alpha) => Ok((
                    e.with_certainty(Certainty::BudgetExhausted),
                    EngineKind::Ec,
                    true,
                )),
                _ => Ok((d, EngineKind::Ilp, true)),
            }
        }
    }

    /// Whether `d`'s coloring and claimed cost survive the independent
    /// audit (`mpld_graph::audit`, a from-scratch Eq. (1) recomputation
    /// against the unsimplified unit graph).
    fn audit_ok(&self, g: &LayoutGraph, d: &Decomposition) -> bool {
        audit_decomposition(g, d, self.params.k).is_ok()
    }

    /// The quarantine fallback: a greedy coloring tagged
    /// [`Certainty::Degraded`]. Always valid, never trusted for quality.
    fn greedy_degraded(&self, g: &LayoutGraph) -> Decomposition {
        Decomposition::from_coloring(g, greedy_coloring(g, self.params.k), self.params.alpha)
            .with_certainty(Certainty::Degraded)
    }

    /// Panic-guarded run of the exact ILP, used as the most-trusted rung
    /// of the degradation ladder. Returns `None` when the ILP itself
    /// panics, errors, or produces a result the audit rejects.
    fn ilp_retry_guarded(
        &self,
        g: &LayoutGraph,
        budget: &Budget,
        timing: &mut TimingBreakdown,
    ) -> Option<Decomposition> {
        let t = Instant::now();
        let retried = catch_unwind(AssertUnwindSafe(|| {
            self.ilp.decompose(g, &self.params, budget)
        }));
        timing.ilp += t.elapsed();
        match retried {
            Ok(Ok(d)) if self.audit_ok(g, &d) => Some(d),
            _ => None,
        }
    }

    /// Folds one tail-solve attempt through the degradation ladder:
    /// audit-clean results pass through; audit-rejected or errored results
    /// are re-routed to the most-trusted engine (the exact ILP, itself
    /// guarded and audited); and when even that fails the unit is
    /// quarantined with a greedy [`Certainty::Degraded`] coloring. Never
    /// fails: every unit always receives a full valid coloring.
    fn audited_tail_result(
        &self,
        g: &LayoutGraph,
        attempt: Result<(Decomposition, EngineKind, bool), MpldError>,
        budget: &Budget,
        timing: &mut TimingBreakdown,
    ) -> UnitSolve {
        match attempt {
            Ok((d, engine, budget_fallback)) => {
                if self.audit_ok(g, &d) {
                    return UnitSolve {
                        d,
                        engine,
                        budget_fallback,
                        audit_rejected: false,
                        quarantine: None,
                    };
                }
                if engine != EngineKind::Ilp {
                    if let Some(d2) = self.ilp_retry_guarded(g, budget, timing) {
                        return UnitSolve {
                            d: d2,
                            engine: EngineKind::Ilp,
                            budget_fallback,
                            audit_rejected: true,
                            quarantine: None,
                        };
                    }
                }
                UnitSolve {
                    d: self.greedy_degraded(g),
                    engine,
                    budget_fallback,
                    audit_rejected: true,
                    quarantine: None,
                }
            }
            Err(e) => {
                if let Some(d2) = self.ilp_retry_guarded(g, budget, timing) {
                    return UnitSolve {
                        d: d2,
                        engine: EngineKind::Ilp,
                        budget_fallback: false,
                        audit_rejected: false,
                        quarantine: None,
                    };
                }
                UnitSolve {
                    d: self.greedy_degraded(g),
                    engine: EngineKind::Ilp,
                    budget_fallback: false,
                    audit_rejected: false,
                    quarantine: Some(e),
                }
            }
        }
    }

    /// Fault-isolated ILP/EC-tail solve for one unit: runs
    /// [`AdaptiveFramework::decompose_with_selection`] under
    /// `catch_unwind`, converting a panic into an
    /// [`MpldError::Panicked`] quarantine, and passes everything else
    /// through the audit ladder ([`AdaptiveFramework::audited_tail_result`]).
    pub(crate) fn solve_tail_guarded(
        &self,
        unit: usize,
        g: &LayoutGraph,
        ec_first: bool,
        budget: &Budget,
        timing: &mut TimingBreakdown,
    ) -> UnitSolve {
        let attempt = {
            let timing = &mut *timing;
            catch_unwind(AssertUnwindSafe(move || {
                self.decompose_with_selection(g, ec_first, budget, timing)
            }))
        };
        match attempt {
            Ok(r) => self.audited_tail_result(g, r, budget, timing),
            Err(p) => UnitSolve {
                d: self.greedy_degraded(g),
                engine: if ec_first {
                    EngineKind::Ec
                } else {
                    EngineKind::Ilp
                },
                budget_fallback: false,
                audit_rejected: false,
                quarantine: Some(MpldError::Panicked {
                    unit,
                    payload: panic_payload_string(p.as_ref()),
                }),
            },
        }
    }

    /// Decomposes one unit graph through the full adaptive flow with
    /// fault isolation, returning the guarded solve plus whether a
    /// ColorGNN guard fallback occurred. Infallible: panics and engine
    /// errors degrade per the ladder instead of propagating.
    fn decompose_unit(
        &self,
        unit: usize,
        hetero: &LayoutGraph,
        budget: &Budget,
        timing: &mut TimingBreakdown,
    ) -> (UnitSolve, bool) {
        let mut audit_rejected = false;

        // 1. Library matching (audited: a stale or corrupted library
        // transfer falls through to the engines below).
        if hetero.num_nodes() <= self.library.max_nodes() {
            let t = Instant::now();
            let hit = self.library.lookup(&self.selector, hetero);
            timing.matching += t.elapsed();
            if let Some(d) = hit {
                if self.audit_ok(hetero, &d) {
                    return (
                        UnitSolve {
                            d,
                            engine: EngineKind::Matching,
                            budget_fallback: false,
                            audit_rejected,
                            quarantine: None,
                        },
                        false,
                    );
                }
                audit_rejected = true;
            }
        }

        // 2. Stitch redundancy → ColorGNN on the merged parent graph.
        let mut fallback = false;
        if self.use_colorgnn {
            let t = Instant::now();
            let redundant = if hetero.has_stitches() {
                self.redundancy_confidence(hetero) > self.redundancy_bar
            } else {
                true // no stitch candidates at all: trivially non-stitch
            };
            timing.redundancy += t.elapsed();
            if redundant {
                let t = Instant::now();
                let (parent, map) = hetero.merge_stitch_edges();
                // Guarded: a panicking or erroring ColorGNN is a guard
                // failure, not a layout failure.
                let pd = catch_unwind(AssertUnwindSafe(|| {
                    self.colorgnn.decompose(&parent, &self.params, budget)
                }));
                timing.colorgnn += t.elapsed();
                match pd {
                    Ok(Ok(pd)) if pd.cost.conflicts == 0 => {
                        // Expand the parent coloring to subfeatures (no
                        // stitch is activated, so the cost carries over
                        // exactly) and audit the expansion: an honest
                        // accepted expansion reproduces the parent cost
                        // bit-for-bit.
                        let coloring: Vec<u8> =
                            map.iter().map(|&p| pd.coloring[p as usize]).collect();
                        match Decomposition::try_from_coloring(hetero, coloring, self.params.alpha)
                        {
                            Ok(d) if d.cost == pd.cost => {
                                return (
                                    UnitSolve {
                                        d,
                                        engine: EngineKind::ColorGnn,
                                        budget_fallback: false,
                                        audit_rejected,
                                        quarantine: None,
                                    },
                                    false,
                                );
                            }
                            _ => {
                                audit_rejected = true;
                                fallback = true;
                            }
                        }
                    }
                    // The parent graph may genuinely need conflicts or
                    // stitches; defer to the exact engines.
                    Ok(Ok(_)) => fallback = true,
                    Ok(Err(_)) | Err(_) => fallback = true,
                }
            }
        }

        // 3. ILP/EC selection with certified EC acceptance, guarded.
        let t = Instant::now();
        let ec_first = fallback || self.select_engine(hetero) == 1;
        timing.selection += t.elapsed();
        let mut solve = self.solve_tail_guarded(unit, hetero, ec_first, budget, timing);
        solve.audit_rejected |= audit_rejected;
        (solve, fallback)
    }

    /// Adaptively decomposes a prepared layout, one unit at a time (no
    /// batched inference). Mostly useful for comparison with the batched
    /// default, [`AdaptiveFramework::decompose_prepared`].
    pub fn decompose_prepared_unbatched(&self, prep: &PreparedLayout) -> AdaptiveResult {
        unwrap_unlimited(self.decompose_prepared_unbatched_with(prep, &BudgetPolicy::unlimited()))
    }

    /// Budgeted variant of
    /// [`AdaptiveFramework::decompose_prepared_unbatched`].
    ///
    /// # Errors
    ///
    /// Budget exhaustion is not an error (units keep their best-so-far
    /// incumbents, see [`BudgetBreakdown`]); `Err` means an engine
    /// rejected its input outright.
    pub fn decompose_prepared_unbatched_with(
        &self,
        prep: &PreparedLayout,
        policy: &BudgetPolicy,
    ) -> Result<AdaptiveResult, MpldError> {
        let start = Instant::now();
        let total = policy.total_budget();
        let mut timing = TimingBreakdown::default();
        let mut usage = UsageBreakdown::default();
        let mut unit_engines = Vec::with_capacity(prep.units.len());
        let mut unit_results = Vec::with_capacity(prep.units.len());
        let mut unit_outcomes = Vec::with_capacity(prep.units.len());
        let mut quarantines = Vec::new();
        for (i, unit) in prep.units.iter().enumerate() {
            let unit_budget = policy.unit_budget(&total);
            let solver_before = timing.ilp + timing.ec;
            let (solve, fell_back) =
                self.decompose_unit(i, &unit.hetero, &unit_budget, &mut timing);
            match solve.engine {
                EngineKind::Matching => usage.matching += 1,
                EngineKind::ColorGnn => usage.colorgnn += 1,
                EngineKind::Ilp => usage.ilp += 1,
                EngineKind::Ec => usage.ec += 1,
            }
            if fell_back {
                usage.colorgnn_fallbacks += 1;
            }
            if let Some(q) = solve.quarantine {
                quarantines.push((i, q));
            }
            unit_outcomes.push(UnitOutcome {
                engine: solve.engine,
                certainty: solve.d.certainty,
                budget_fallback: solve.budget_fallback,
                time: timing.ilp + timing.ec - solver_before,
                audit_rejected: solve.audit_rejected,
            });
            unit_engines.push(solve.engine);
            unit_results.push(solve.d);
        }
        let decompose_time = start.elapsed();
        let pipeline = assemble(prep, &self.params, unit_results, decompose_time);
        Ok(AdaptiveResult {
            pipeline,
            usage,
            timing,
            unit_engines,
            memo_hits: 0,
            inference: InferenceStats::default(),
            budget: BudgetBreakdown::from_outcomes(&unit_outcomes),
            unit_outcomes,
            quarantines,
            resumed_units: 0,
        })
    }

    /// Shared prefix of the batched online flow: one selector pass
    /// (embeddings + ILP/EC probabilities), one redundancy pass, library
    /// matching with the precomputed embeddings, and the batched ColorGNN
    /// run over predicted-redundant units. Returns the routing state with
    /// the ILP/EC tail still unsolved (`unit_results[i] == None`).
    ///
    /// This is the per-request parity oracle: it freezes both RGCN heads
    /// locally (a deterministic weight fold, so the result equals the
    /// engine's freeze-once heads bit for bit) and drives ColorGNN
    /// through the model's own mutexed RNG stream.
    fn route_units(
        &self,
        graphs: &[&LayoutGraph],
        budget: &Budget,
        routed: &mut RoutedUnits,
    ) -> Result<(), MpldError> {
        let t = Instant::now();
        let frozen_sel = self.selector.freeze();
        let frozen_red = self.redundancy.freeze();
        routed.timing.selection += t.elapsed();
        self.route_units_with(
            graphs,
            budget,
            routed,
            RouteBackend {
                frozen_sel: &frozen_sel,
                frozen_red: &frozen_red,
                shared: None,
                color: ColorDriver::Legacy(&self.colorgnn),
            },
        )
    }

    /// Backend-parameterized routing pass shared by the per-request entry
    /// points and the concurrent [`Engine`](crate::Engine): the caller
    /// supplies the frozen heads (freeze-per-call or freeze-once — the
    /// fold is deterministic, so outputs are bitwise equal), an optional
    /// cross-request routing memo, and the ColorGNN driver (the model's
    /// mutexed RNG, or per-session RNG state).
    pub(crate) fn route_units_with(
        &self,
        graphs: &[&LayoutGraph],
        budget: &Budget,
        routed: &mut RoutedUnits,
        mut backend: RouteBackend<'_>,
    ) -> Result<(), MpldError> {
        let n = graphs.len();
        let timing = &mut routed.timing;
        let frozen_sel = backend.frozen_sel;
        let frozen_red = backend.frozen_red;

        // Tape-free routing inference: dedup structurally identical units
        // through the embedding memo and run bucketed block-diagonal
        // frozen passes per head over the representatives only. Frozen
        // f32 forwards are bit-identical to the tape (property-tested in
        // `mpld-gnn`), and a verified memo hit means the *same graph*, so
        // every probability and embedding a duplicate receives is exactly
        // what its own forward pass would have produced.
        let t = Instant::now();
        let mut memo = EmbeddingMemo::new();
        let mut rep_slot = Vec::with_capacity(n);
        let mut reps: Vec<&LayoutGraph> = Vec::new();
        for &g in graphs {
            rep_slot.push(match memo.find(g) {
                Some(slot) => slot,
                None => {
                    memo.insert(g, reps.len());
                    reps.push(g);
                    reps.len() - 1
                }
            });
        }
        let nr = reps.len();

        // Cross-request routing memo (engine path only): a representative
        // whose exact structure was routed by an earlier request reuses
        // that request's probabilities and embeddings verbatim. This is
        // bit-safe because per-graph frozen outputs are independent of
        // batch composition (property-tested in `mpld-gnn`), so the
        // cached entry is bitwise what this request's own forward pass
        // would have produced.
        let cached: Vec<Option<Arc<RoutingEntry>>> = match backend.shared {
            Some(shared) => reps.iter().map(|g| shared.get(g)).collect(),
            None => vec![None; nr],
        };
        let shared_hits = cached.iter().filter(|c| c.is_some()).count();

        // Trust ladder, lane split. Quantized precisions route most
        // representatives through the reduced-precision planes; the ones
        // the library could structurally match stay pinned at f32 (its
        // cosine prefilter slack, 1e-4, is comparable to quantization
        // noise, so a quantized embedding could change a lookup). For the
        // unpinned rest, quantized embeddings are harmless: without a
        // size-compatible entry, `lookup_with_embeddings` returns `None`
        // no matter what embeddings it is given.
        let quantized = self.precision != Precision::F32;
        let margin = match self.precision {
            Precision::F32 => 0.0,
            Precision::F16 => F16_TRUST_MARGIN,
            Precision::Int8 => INT8_TRUST_MARGIN,
        };
        let pinned: Vec<bool> = if quantized {
            reps.iter()
                .map(|g| self.library.has_size_compatible(g))
                .collect()
        } else {
            vec![false; nr]
        };
        // Memo-served representatives skip the inference lanes entirely.
        let f32_items: Vec<usize> = (0..nr)
            .filter(|&s| cached[s].is_none() && (!quantized || pinned[s]))
            .collect();
        let quant_items: Vec<usize> = if quantized {
            (0..nr)
                .filter(|&s| cached[s].is_none() && !pinned[s])
                .collect()
        } else {
            Vec::new()
        };

        // Bucketed batch plans per lane: similarly-sized graphs share a
        // batch, several tightly-packed batches replace the old single
        // union batch, and the peak transient scratch drops accordingly.
        let sizes: Vec<(usize, usize)> = reps
            .iter()
            .map(|g| {
                (
                    g.num_nodes(),
                    g.conflict_edges().len() + g.stitch_edges().len(),
                )
            })
            .collect();
        let f32_plan = BatchPlan::new(&f32_items, &sizes, DEFAULT_MAX_BATCH_NODES);
        let quant_plan = BatchPlan::new(&quant_items, &sizes, DEFAULT_MAX_BATCH_NODES);

        // Per-representative outputs, scattered batch by batch. One
        // selector pass yields probabilities plus the graph and node
        // embeddings the library matcher consumes below (the tape needed
        // a second traversal for the embeddings); the redundancy pass
        // yields probabilities only.
        let mut sel_probs: Vec<Vec<f32>> = vec![Vec::new(); nr];
        let mut graph_emb: Vec<Vec<f32>> = vec![Vec::new(); nr];
        let mut node_emb: Vec<Matrix> = (0..nr).map(|_| Matrix::zeros(0, 0)).collect();
        let mut red_probs: Vec<Vec<f32>> = vec![Vec::new(); nr];
        for (s, entry) in cached.iter().enumerate() {
            if let Some(e) = entry {
                sel_probs[s] = e.sel_probs.clone();
                graph_emb[s] = e.graph_emb.clone();
                node_emb[s] = e.node_emb.clone();
                red_probs[s] = e.red_probs.clone();
            }
        }
        timing.selection += t.elapsed();

        let infer_lane = |items: &[usize],
                          precision: Precision,
                          timing: &mut TimingBreakdown,
                          sel_probs: &mut [Vec<f32>],
                          graph_emb: &mut [Vec<f32>],
                          node_emb: &mut [Matrix],
                          red_probs: &mut [Vec<f32>]| {
            let batch: Vec<&LayoutGraph> = items.iter().map(|&s| reps[s]).collect();
            let enc = InferBatch::new(&batch);
            let t = Instant::now();
            let mut sel = frozen_sel.infer_encoded_with(&enc, precision);
            for (bi, &s) in items.iter().enumerate() {
                sel_probs[s] = std::mem::take(&mut sel.probs[bi]);
                graph_emb[s] = std::mem::take(&mut sel.graph_embeddings[bi]);
                node_emb[s] = std::mem::replace(&mut sel.node_embeddings[bi], Matrix::zeros(0, 0));
            }
            timing.selection += t.elapsed();
            let t = Instant::now();
            let mut red = frozen_red.predict_encoded_with(&enc, precision);
            for (bi, &s) in items.iter().enumerate() {
                red_probs[s] = std::mem::take(&mut red.probs[bi]);
            }
            timing.redundancy += t.elapsed();
        };
        for batch in &f32_plan.batches {
            infer_lane(
                batch,
                Precision::F32,
                timing,
                &mut sel_probs,
                &mut graph_emb,
                &mut node_emb,
                &mut red_probs,
            );
        }
        for batch in &quant_plan.batches {
            infer_lane(
                batch,
                self.precision,
                timing,
                &mut sel_probs,
                &mut graph_emb,
                &mut node_emb,
                &mut red_probs,
            );
        }

        // Trust gate: a quantized routing score that lands within its
        // precision's margin of a decision threshold cannot be trusted to
        // fall on the same side as the f32 score — re-infer those
        // representatives in one f32 union batch. Far from the
        // thresholds, quantization drift (bounded well below the margin)
        // cannot flip a decision, so suite routing stays identical.
        let mut fallback_items: Vec<usize> = Vec::new();
        for &s in &quant_items {
            let near_sel = (sel_probs[s][1] - self.ec_threshold).abs() <= margin;
            let near_red =
                reps[s].has_stitches() && (red_probs[s][0] - self.redundancy_bar).abs() <= margin;
            #[cfg_attr(not(feature = "failpoints"), allow(unused_mut))]
            let mut distrusted = near_sel || near_red;
            #[cfg(feature = "failpoints")]
            {
                distrusted |= mpld_graph::failpoints::fire("route.quant_trust");
            }
            if distrusted {
                fallback_items.push(s);
            }
        }
        if !fallback_items.is_empty() {
            infer_lane(
                &fallback_items,
                Precision::F32,
                timing,
                &mut sel_probs,
                &mut graph_emb,
                &mut node_emb,
                &mut red_probs,
            );
        }

        // Publish freshly routed representatives for later requests. The
        // stored entry is the *post-trust-gate* value (an f32 fallback
        // replaces the distrusted quantized scores first), so a future
        // hit replays exactly what this request resolved to. Racing
        // writers are harmless: identical structures produce bitwise
        // identical entries regardless of which request computed them.
        if let Some(shared) = backend.shared {
            for s in 0..nr {
                if cached[s].is_none() {
                    shared.insert(
                        reps[s],
                        Arc::new(RoutingEntry {
                            sel_probs: sel_probs[s].clone(),
                            red_probs: red_probs[s].clone(),
                            graph_emb: graph_emb[s].clone(),
                            node_emb: node_emb[s].clone(),
                        }),
                    );
                }
            }
        }

        routed.selector_probs = rep_slot.iter().map(|&s| sel_probs[s].clone()).collect();

        // Padding-waste accounting: transient backbone scratch scales
        // with batched nodes times the embedding width (input, aggregate
        // and output rows live concurrently).
        let per_node_bytes = 3 * 4 * frozen_sel.embedding_dim().max(1);
        let fallback_nodes: usize = fallback_items.iter().map(|&s| sizes[s].0).sum();
        let peak_after = f32_plan
            .peak_nodes_after
            .max(quant_plan.peak_nodes_after)
            .max(fallback_nodes);
        routed.inference = InferenceStats {
            memo_hits: memo.hits(),
            shared_memo_hits: shared_hits,
            units_inferred: nr - shared_hits,
            scratch_high_water_bytes: frozen_sel
                .scratch_high_water_bytes()
                .max(frozen_red.scratch_high_water_bytes()),
            precision: self.precision,
            quantized_units: quant_items.len() - fallback_items.len(),
            pinned_f32: if quantized {
                pinned.iter().filter(|&&p| p).count()
            } else {
                0
            },
            f32_fallbacks: fallback_items.len(),
            kernel_f32: quant::kernel_name_for(Precision::F32),
            kernel_quant: quant::kernel_name_for(self.precision),
            batches_planned: f32_plan.batches.len() + quant_plan.batches.len(),
            padding_waste_before_bytes: (f32_plan.peak_nodes_before + quant_plan.peak_nodes_before)
                * per_node_bytes,
            padding_waste_after_bytes: peak_after * per_node_bytes,
        };

        routed.unit_results = vec![None; n];
        routed.unit_engines = vec![None; n];
        routed.guard_failed = vec![false; n];
        routed.audit_rejected = vec![false; n];

        // 1. Library matching with the precomputed embeddings. Every hit
        // is audited; a stale or corrupted library transfer is rejected
        // and the unit falls through to the engines below.
        let t = Instant::now();
        for (i, g) in graphs.iter().enumerate() {
            if g.num_nodes() <= self.library.max_nodes() {
                let s = rep_slot[i];
                let (emb, nodes) = (&graph_emb[s], &node_emb[s]);
                if let Some(d) = self.library.lookup_with_embeddings(g, emb, nodes) {
                    if self.audit_ok(g, &d) {
                        routed.unit_results[i] = Some(d);
                        routed.unit_engines[i] = Some(EngineKind::Matching);
                        routed.usage.matching += 1;
                    } else {
                        routed.audit_rejected[i] = true;
                    }
                }
            }
        }
        timing.matching += t.elapsed();

        // 2. Predicted-redundant units: merge stitches, batch ColorGNN.
        if self.use_colorgnn {
            let t = Instant::now();
            let mut idx = Vec::new();
            let mut parents = Vec::new();
            let mut maps = Vec::new();
            for (i, g) in graphs.iter().enumerate() {
                if routed.unit_results[i].is_some() || g.num_nodes() == 0 {
                    continue;
                }
                let redundant =
                    !g.has_stitches() || red_probs[rep_slot[i]][0] > self.redundancy_bar;
                if redundant {
                    let (parent, map) = g.merge_stitch_edges();
                    idx.push(i);
                    parents.push(parent);
                    maps.push(map);
                }
            }
            let parent_refs: Vec<&LayoutGraph> = parents.iter().collect();
            // Guarded: a panicking batch costs a guard fallback for every
            // batched unit, never the layout.
            // ColorGNN results are never cached across requests: the
            // restart sampler consumes an RNG stream, so the output is a
            // function of the driver's RNG state, not of the graph alone.
            let color = &mut backend.color;
            let results = catch_unwind(AssertUnwindSafe(|| match color {
                ColorDriver::Legacy(c) => c.decompose_batch(&parent_refs, &self.params, budget),
                ColorDriver::Session(f, rng) => {
                    f.decompose_batch_with_rng(&parent_refs, &self.params, budget, rng)
                }
            }));
            match results {
                Ok(results) => {
                    for ((&i, pd), map) in idx.iter().zip(results).zip(&maps) {
                        if pd.cost.conflicts == 0 {
                            let coloring: Vec<u8> =
                                map.iter().map(|&p| pd.coloring[p as usize]).collect();
                            match Decomposition::try_from_coloring(
                                graphs[i],
                                coloring,
                                self.params.alpha,
                            ) {
                                // An honest accepted expansion reproduces
                                // the parent cost bit-for-bit; anything
                                // else is an audit rejection.
                                Ok(d) if d.cost == pd.cost => {
                                    routed.unit_results[i] = Some(d);
                                    routed.unit_engines[i] = Some(EngineKind::ColorGnn);
                                    routed.usage.colorgnn += 1;
                                }
                                _ => {
                                    routed.usage.colorgnn_fallbacks += 1;
                                    routed.guard_failed[i] = true;
                                    routed.audit_rejected[i] = true;
                                }
                            }
                        } else {
                            routed.usage.colorgnn_fallbacks += 1;
                            routed.guard_failed[i] = true;
                        }
                    }
                }
                Err(_) => {
                    for &i in &idx {
                        routed.usage.colorgnn_fallbacks += 1;
                        routed.guard_failed[i] = true;
                    }
                }
            }
            timing.colorgnn += t.elapsed();
        }
        Ok(())
    }

    /// Adaptively decomposes a prepared layout with batched GNN inference
    /// (the paper batches all simplified graphs for efficiency): one RGCN
    /// pass computes embeddings + selector probabilities for every unit,
    /// one `RGCN_r` pass the redundancy confidences, and one batched
    /// ColorGNN run decomposes all predicted-redundant parent graphs.
    pub fn decompose_prepared(&self, prep: &PreparedLayout) -> AdaptiveResult {
        unwrap_unlimited(self.decompose_prepared_with(prep, &BudgetPolicy::unlimited()))
    }

    /// Budgeted variant of [`AdaptiveFramework::decompose_prepared`].
    ///
    /// With an unlimited `policy` the result is bit-identical to
    /// [`AdaptiveFramework::decompose_prepared`]. Under a limit, units
    /// whose exact solver runs out of budget keep their best-so-far
    /// incumbent ([`Certainty::BudgetExhausted`]) or fall back to the
    /// next-cheapest engine; every unit still receives a full valid
    /// coloring.
    ///
    /// # Errors
    ///
    /// `Err` means an engine rejected its input outright (unsupported
    /// parameters, mismatched coloring); budget exhaustion is never an
    /// error.
    pub fn decompose_prepared_with(
        &self,
        prep: &PreparedLayout,
        policy: &BudgetPolicy,
    ) -> Result<AdaptiveResult, MpldError> {
        let start = Instant::now();
        let n = prep.units.len();
        let graphs: Vec<&LayoutGraph> = prep.units.iter().map(|u| &u.hetero).collect();
        if n == 0 {
            return Ok(empty_result(prep, &self.params, start));
        }
        let total = policy.total_budget();
        let mut routed = RoutedUnits::default();
        self.route_units(&graphs, &total, &mut routed)?;
        let RoutedUnits {
            mut unit_results,
            mut unit_engines,
            mut usage,
            mut timing,
            guard_failed,
            selector_probs,
            mut audit_rejected,
            inference,
        } = routed;
        let mut budget_fallback = vec![false; n];
        let mut unit_time = vec![Duration::ZERO; n];
        let mut quarantines = Vec::new();

        // 3. Remaining units (including ColorGNN-guard failures): ILP/EC
        // per the selector, with certified EC acceptance (see
        // `decompose_with_selection`), each solve guarded and audited.
        for (i, g) in graphs.iter().enumerate() {
            if unit_results[i].is_some() {
                continue;
            }
            let ec_first = guard_failed[i] || selector_probs[i][1] > self.ec_threshold;
            let unit_budget = policy.unit_budget(&total);
            let solver_before = timing.ilp + timing.ec;
            let solve = self.solve_tail_guarded(i, g, ec_first, &unit_budget, &mut timing);
            match solve.engine {
                EngineKind::Ilp => usage.ilp += 1,
                _ => usage.ec += 1,
            }
            budget_fallback[i] = solve.budget_fallback;
            unit_time[i] = timing.ilp + timing.ec - solver_before;
            audit_rejected[i] |= solve.audit_rejected;
            if let Some(q) = solve.quarantine {
                quarantines.push((i, q));
            }
            unit_results[i] = Some(solve.d);
            unit_engines[i] = Some(solve.engine);
        }

        Ok(finish(
            prep,
            &self.params,
            FinishParts {
                unit_results,
                unit_engines,
                budget_fallback,
                unit_time,
                audit_rejected,
                usage,
                timing,
                memo_hits: 0,
                inference,
                quarantines,
                resumed_units: 0,
            },
            start,
        ))
    }

    /// Like [`AdaptiveFramework::decompose_prepared`], but fans the
    /// ILP/EC tail out to `threads` workers scheduled largest-unit-first,
    /// with a session-scoped memo cache: tail units that are isomorphic
    /// (same canonical certificate from `mpld-matching`, same routing
    /// flag) are solved once — the first representative in unit order —
    /// and every other member receives the representative's coloring
    /// transferred through the shared canonical label space, re-verified
    /// against the member's own cost function before acceptance.
    ///
    /// The batched GNN passes (selection, redundancy, matching, ColorGNN)
    /// stay serial: they are a single inference pass each and consume the
    /// ColorGNN RNG stream in unit order, which keeps results independent
    /// of `threads`. Consequently cost, usage and per-unit engines are
    /// identical for any thread count.
    ///
    /// Timing semantics: `timing.ilp`/`timing.ec` sum the *per-unit solver
    /// time* across workers (the paper's Fig. 9/Table V accounting), so
    /// they can exceed the wall-clock `pipeline.decompose_time`, which is
    /// reported separately.
    pub fn decompose_prepared_parallel(
        &self,
        prep: &PreparedLayout,
        threads: usize,
    ) -> AdaptiveResult {
        unwrap_unlimited(self.decompose_prepared_parallel_with(
            prep,
            threads,
            &BudgetPolicy::unlimited(),
        ))
    }

    /// Budgeted variant of
    /// [`AdaptiveFramework::decompose_prepared_parallel`]. Per-unit
    /// budgets are anchored when a worker *starts* a unit, so a per-unit
    /// limit bounds each solve regardless of queueing; the layout-wide
    /// deadline is shared by all workers.
    ///
    /// # Errors
    ///
    /// `Err` means an engine rejected its input outright; budget
    /// exhaustion is never an error.
    pub fn decompose_prepared_parallel_with(
        &self,
        prep: &PreparedLayout,
        threads: usize,
        policy: &BudgetPolicy,
    ) -> Result<AdaptiveResult, MpldError> {
        self.decompose_prepared_parallel_recoverable(prep, threads, policy, Recovery::default())
    }

    /// Crash-safe variant of
    /// [`AdaptiveFramework::decompose_prepared_parallel_with`]: with
    /// `recovery.journal` set, every ILP/EC-tail solve is appended to a
    /// truncation-tolerant JSONL journal as it completes; with
    /// `recovery.resume` set, units recorded in a previous run's journal
    /// are restored instead of re-solved (after each record passes the
    /// independent audit against the present unit graph).
    ///
    /// The GNN routing passes always re-run — they are deterministic given
    /// the model seed — so a resumed run is bit-identical to the
    /// uninterrupted one for every journaled unit.
    ///
    /// # Errors
    ///
    /// `Err` means an engine rejected its input outright; budget
    /// exhaustion is never an error, and journal write failures are
    /// swallowed (a lost checkpoint, never a lost solve).
    pub fn decompose_prepared_parallel_recoverable(
        &self,
        prep: &PreparedLayout,
        threads: usize,
        policy: &BudgetPolicy,
        recovery: Recovery<'_>,
    ) -> Result<AdaptiveResult, MpldError> {
        let start = Instant::now();
        let n = prep.units.len();
        let graphs: Vec<&LayoutGraph> = prep.units.iter().map(|u| &u.hetero).collect();
        if n == 0 {
            return Ok(empty_result(prep, &self.params, start));
        }
        let total = policy.total_budget();
        let mut routed = RoutedUnits::default();
        self.route_units(&graphs, &total, &mut routed)?;
        let RoutedUnits {
            mut unit_results,
            mut unit_engines,
            mut usage,
            mut timing,
            guard_failed,
            selector_probs,
            mut audit_rejected,
            inference,
        } = routed;

        let mut budget_fallback = vec![false; n];
        let mut unit_time = vec![Duration::ZERO; n];
        let mut quarantines: Vec<(usize, MpldError)> = Vec::new();
        let mut resumed_units = 0usize;

        // 3. The ILP/EC tail. `tail` is in unit order; `ecf[t]` is the
        // routing flag of tail unit `t` (it is part of the memo key
        // because it decides which engines may answer). Resumed units stay
        // in `tail` so the usage accounting below covers them.
        let tail: Vec<usize> = (0..n).filter(|&i| unit_results[i].is_none()).collect();
        let ecf: Vec<bool> = tail
            .iter()
            .map(|&i| guard_failed[i] || selector_probs[i][1] > self.ec_threshold)
            .collect();

        // Resume: restore journaled tail units whose records survive the
        // audit (fingerprint match, valid coloring, recorded cost equal to
        // the from-scratch recomputation). Anything else is re-solved.
        if let Some(cp) = recovery.resume {
            for &i in &tail {
                let Some(e) = cp.get(i, unit_fingerprint(graphs[i])) else {
                    continue;
                };
                match audit_coloring(graphs[i], &e.coloring, self.params.k) {
                    Ok(recomputed) if recomputed == e.cost => {}
                    _ => continue,
                }
                unit_results[i] = Some(Decomposition {
                    coloring: e.coloring.clone(),
                    cost: e.cost,
                    certainty: e.certainty,
                });
                unit_engines[i] = Some(e.engine);
                budget_fallback[i] = e.budget_fallback;
                resumed_units += 1;
            }
        }

        // Group memoizable tail units by canonical certificate. A cheap
        // structural fingerprint goes first: isomorphic graphs always share
        // it, so canonicalization — the expensive step — is only paid for
        // units whose fingerprints actually collide. The labeling realizing
        // each certificate is kept for the transfer.
        let mut finger: HashMap<(usize, usize, Vec<u8>, bool), Vec<usize>> = HashMap::new();
        for (t, &i) in tail.iter().enumerate() {
            let g = graphs[i];
            if unit_results[i].is_some() {
                continue; // restored from the checkpoint journal
            }
            if g.num_nodes() <= MEMO_MAX_NODES {
                let mut degs: Vec<u8> = (0..g.num_nodes() as u32)
                    .map(|v| (g.conflict_degree(v) as u8) << 4 | g.stitch_neighbors(v).len() as u8)
                    .collect();
                degs.sort_unstable();
                finger
                    .entry((
                        g.conflict_edges().len(),
                        g.stitch_edges().len(),
                        degs,
                        ecf[t],
                    ))
                    .or_default()
                    .push(t);
            }
        }
        let mut labelings: Vec<Option<Vec<u8>>> = vec![None; tail.len()];
        let mut groups: HashMap<(CanonicalForm, bool), Vec<usize>> = HashMap::new();
        for bucket in finger.into_values() {
            if bucket.len() < 2 {
                continue;
            }
            for t in bucket {
                let (form, perm) = canonical_form_labeled(graphs[tail[t]]);
                labelings[t] = Some(perm);
                groups.entry((form, ecf[t])).or_default().push(t);
            }
        }
        // Work items: one per certificate group (members in unit order,
        // first member is the representative) plus one singleton per
        // unmemoizable unit. Sorted by representative so scheduling is
        // deterministic.
        let mut items: Vec<Vec<usize>> = groups.into_values().collect();
        items.extend(
            (0..tail.len())
                .filter(|&t| labelings[t].is_none() && unit_results[tail[t]].is_none())
                .map(|t| vec![t]),
        );
        items.sort_by_key(|members| members[0]);

        // Solve one representative per item, largest units first. Each
        // worker anchors the per-unit budget when it picks the item up,
        // runs the fault-isolated guarded solve (so the job itself never
        // fails), and journals the result before returning. The outer
        // quarantined runner is a second line of defense: should a job
        // still panic, only that item degrades.
        let solved: Vec<Result<(UnitSolve, TimingBreakdown), String>> =
            run_largest_first_quarantined(
                items.len(),
                threads,
                |j| graphs[tail[items[j][0]]].num_nodes(),
                |j| {
                    let mut t = TimingBreakdown::default();
                    let rep = items[j][0];
                    let i = tail[rep];
                    let unit_budget = policy.unit_budget(&total);
                    let s = self.solve_tail_guarded(i, graphs[i], ecf[rep], &unit_budget, &mut t);
                    journal_record(
                        recovery.journal,
                        i,
                        graphs[i],
                        &s.d,
                        s.engine,
                        s.budget_fallback,
                    );
                    (s, t)
                },
            );

        // Scatter representatives, transfer to the remaining members, and
        // re-verify every transfer against the member's own cost.
        let mut memo_hits = 0usize;
        let mut unverified: Vec<usize> = Vec::new();
        for (members, solved_j) in items.iter().zip(solved) {
            let rep = members[0];
            let ri = tail[rep];
            let (s, t) = match solved_j {
                Ok(pair) => pair,
                Err(payload) => {
                    // Second line of defense: the worker job itself
                    // panicked. Quarantine the representative and re-solve
                    // the remaining group members individually.
                    quarantines.push((ri, MpldError::Panicked { unit: ri, payload }));
                    unit_results[ri] = Some(self.greedy_degraded(graphs[ri]));
                    unit_engines[ri] = Some(if ecf[rep] {
                        EngineKind::Ec
                    } else {
                        EngineKind::Ilp
                    });
                    unverified.extend(members[1..].iter().copied());
                    continue;
                }
            };
            timing.ilp += t.ilp;
            timing.ec += t.ec;
            // A quarantined or degraded representative must not spread its
            // fallback coloring to isomorphic members: they re-solve.
            let transferable = s.quarantine.is_none() && s.d.certainty != Certainty::Degraded;
            audit_rejected[ri] |= s.audit_rejected;
            budget_fallback[ri] = s.budget_fallback;
            unit_time[ri] = t.ilp + t.ec;
            unit_engines[ri] = Some(s.engine);
            let engine = s.engine;
            let fell_back = s.budget_fallback;
            if let Some(q) = s.quarantine {
                quarantines.push((ri, q));
            }
            let d = s.d;
            unit_results[ri] = Some(d.clone());
            for &t_pos in &members[1..] {
                if !transferable {
                    unverified.push(t_pos);
                    continue;
                }
                let i = tail[t_pos];
                #[allow(clippy::expect_used)] // grouped units were labeled above
                let rep_perm = labelings[rep].as_ref().expect("grouped units are labeled");
                #[allow(clippy::expect_used)] // grouped units were labeled above
                let mem_perm = labelings[t_pos]
                    .as_ref()
                    .expect("grouped units are labeled");
                let nn = graphs[i].num_nodes();
                let mut canon_colors = vec![0u8; nn];
                for v in 0..nn {
                    canon_colors[rep_perm[v] as usize] = d.coloring[v];
                }
                #[cfg_attr(not(feature = "failpoints"), allow(unused_mut))]
                let mut coloring: Vec<u8> = (0..nn)
                    .map(|v| canon_colors[mem_perm[v] as usize])
                    .collect();
                #[cfg(feature = "failpoints")]
                mpld_graph::failpoints::corrupt_coloring(
                    "memo.transfer",
                    &mut coloring,
                    self.params.k,
                );
                let cost = graphs[i].evaluate(&coloring, self.params.alpha);
                if cost == d.cost {
                    let md = Decomposition {
                        coloring,
                        cost,
                        certainty: d.certainty,
                    };
                    journal_record(recovery.journal, i, graphs[i], &md, engine, fell_back);
                    unit_results[i] = Some(md);
                    unit_engines[i] = Some(engine);
                    budget_fallback[i] = fell_back;
                    memo_hits += 1;
                } else {
                    // A certificate collision or a corrupted transfer
                    // lands here; solve the member directly rather than
                    // trust the transfer.
                    audit_rejected[i] = true;
                    unverified.push(t_pos);
                }
            }
        }
        for t_pos in unverified {
            let i = tail[t_pos];
            let unit_budget = policy.unit_budget(&total);
            let solver_before = timing.ilp + timing.ec;
            let s = self.solve_tail_guarded(i, graphs[i], ecf[t_pos], &unit_budget, &mut timing);
            budget_fallback[i] = s.budget_fallback;
            unit_time[i] = timing.ilp + timing.ec - solver_before;
            audit_rejected[i] |= s.audit_rejected;
            if let Some(q) = s.quarantine {
                quarantines.push((i, q));
            }
            journal_record(
                recovery.journal,
                i,
                graphs[i],
                &s.d,
                s.engine,
                s.budget_fallback,
            );
            unit_results[i] = Some(s.d);
            unit_engines[i] = Some(s.engine);
        }
        for &i in &tail {
            #[allow(clippy::expect_used)] // every tail unit was solved above
            match unit_engines[i].expect("every tail unit solved") {
                EngineKind::Ilp => usage.ilp += 1,
                _ => usage.ec += 1,
            }
        }

        Ok(finish(
            prep,
            &self.params,
            FinishParts {
                unit_results,
                unit_engines,
                budget_fallback,
                unit_time,
                audit_rejected,
                usage,
                timing,
                memo_hits,
                inference,
                quarantines,
                resumed_units,
            },
            start,
        ))
    }
}

/// Best-effort append of one solved tail unit to the checkpoint journal
/// (a failed write is a lost checkpoint, never a failed solve).
pub(crate) fn journal_record(
    journal: Option<&JournalWriter>,
    unit: usize,
    g: &LayoutGraph,
    d: &Decomposition,
    engine: EngineKind,
    budget_fallback: bool,
) {
    let Some(j) = journal else { return };
    let _ = j.record(&CheckpointEntry {
        unit,
        fingerprint: unit_fingerprint(g),
        engine,
        certainty: d.certainty,
        budget_fallback,
        coloring: d.coloring.clone(),
        cost: d.cost,
    });
}

/// Propagates an impossible unlimited-budget error as a panic (the
/// infallible legacy entry points delegate through this).
fn unwrap_unlimited(r: Result<AdaptiveResult, MpldError>) -> AdaptiveResult {
    match r {
        Ok(res) => res,
        Err(e) => panic!("adaptive framework failed on an unlimited budget: {e}"),
    }
}

/// The empty-layout result shared by every entry point.
pub(crate) fn empty_result(
    prep: &PreparedLayout,
    params: &DecomposeParams,
    start: Instant,
) -> AdaptiveResult {
    let pipeline = assemble(prep, params, Vec::new(), start.elapsed());
    AdaptiveResult {
        pipeline,
        usage: UsageBreakdown::default(),
        timing: TimingBreakdown::default(),
        unit_engines: Vec::new(),
        memo_hits: 0,
        inference: InferenceStats::default(),
        unit_outcomes: Vec::new(),
        budget: BudgetBreakdown::default(),
        quarantines: Vec::new(),
        resumed_units: 0,
    }
}

/// Fully-populated per-unit state handed to [`finish`].
pub(crate) struct FinishParts {
    pub(crate) unit_results: Vec<Option<Decomposition>>,
    pub(crate) unit_engines: Vec<Option<EngineKind>>,
    pub(crate) budget_fallback: Vec<bool>,
    pub(crate) unit_time: Vec<Duration>,
    pub(crate) audit_rejected: Vec<bool>,
    pub(crate) usage: UsageBreakdown,
    pub(crate) timing: TimingBreakdown,
    pub(crate) memo_hits: usize,
    pub(crate) inference: InferenceStats,
    pub(crate) quarantines: Vec<(usize, MpldError)>,
    pub(crate) resumed_units: usize,
}

/// Assembles the final [`AdaptiveResult`] from fully-populated routing
/// state, deriving per-unit outcomes and the budget breakdown.
pub(crate) fn finish(
    prep: &PreparedLayout,
    params: &DecomposeParams,
    parts: FinishParts,
    start: Instant,
) -> AdaptiveResult {
    #[allow(clippy::expect_used)] // the entry points decompose every unit
    let unit_results: Vec<Decomposition> = parts
        .unit_results
        .into_iter()
        .map(|d| d.expect("every unit decomposed"))
        .collect();
    #[allow(clippy::expect_used)] // the entry points route every unit
    let unit_engines: Vec<EngineKind> = parts
        .unit_engines
        .into_iter()
        .map(|e| e.expect("every unit routed"))
        .collect();
    let unit_outcomes: Vec<UnitOutcome> = unit_results
        .iter()
        .zip(&unit_engines)
        .zip(parts.budget_fallback.iter().zip(&parts.unit_time))
        .zip(&parts.audit_rejected)
        .map(
            |(((d, &engine), (&fell_back, &time)), &audit_rejected)| UnitOutcome {
                engine,
                certainty: d.certainty,
                budget_fallback: fell_back,
                time,
                audit_rejected,
            },
        )
        .collect();
    let decompose_time = start.elapsed();
    let pipeline = assemble(prep, params, unit_results, decompose_time);
    AdaptiveResult {
        pipeline,
        usage: parts.usage,
        timing: parts.timing,
        unit_engines,
        memo_hits: parts.memo_hits,
        inference: parts.inference,
        budget: BudgetBreakdown::from_outcomes(&unit_outcomes),
        unit_outcomes,
        quarantines: parts.quarantines,
        resumed_units: parts.resumed_units,
    }
}

/// Routing state produced by [`AdaptiveFramework::route_units`].
#[derive(Default)]
pub(crate) struct RoutedUnits {
    pub(crate) unit_results: Vec<Option<Decomposition>>,
    pub(crate) unit_engines: Vec<Option<EngineKind>>,
    pub(crate) usage: UsageBreakdown,
    pub(crate) timing: TimingBreakdown,
    pub(crate) guard_failed: Vec<bool>,
    pub(crate) selector_probs: Vec<Vec<f32>>,
    pub(crate) audit_rejected: Vec<bool>,
    pub(crate) inference: InferenceStats,
}

/// The pluggable pieces of one routing pass
/// ([`AdaptiveFramework::route_units_with`]): frozen heads, an optional
/// cross-request routing memo, and the ColorGNN RNG driver. The
/// per-request entry points pass freshly frozen heads, no memo, and the
/// legacy mutexed driver; the shared [`Engine`](crate::Engine) passes its
/// freeze-once heads, its memo, and per-session RNG state.
pub(crate) struct RouteBackend<'e> {
    pub(crate) frozen_sel: &'e FrozenRgcn,
    pub(crate) frozen_red: &'e FrozenRgcn,
    pub(crate) shared: Option<&'e SharedRoutingMemo>,
    pub(crate) color: ColorDriver<'e>,
}

/// How a routing pass drives the ColorGNN restart sampler.
pub(crate) enum ColorDriver<'e> {
    /// The model's own mutexed RNG (`reseed` + `decompose_batch`) — the
    /// serial parity oracle.
    Legacy(&'e ColorGnn),
    /// A frozen head plus caller-owned RNG state: no lock, and the
    /// stream belongs to one session. Seeded identically to a `reseed`,
    /// it replays the legacy stream bit for bit.
    Session(&'e FrozenColorGnn, &'e mut SmallRng),
}

impl std::fmt::Debug for AdaptiveFramework {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveFramework")
            .field("library_size", &self.library.len())
            .field("redundancy_bar", &self.redundancy_bar)
            .field("use_colorgnn", &self.use_colorgnn)
            .field("params", &self.params)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::prepare;
    use crate::training::{train_framework, OfflineConfig, TrainingData};
    use mpld_layout::{circuit_by_name, Layout};

    fn tiny_framework() -> AdaptiveFramework {
        let params = DecomposeParams::tpl();
        let layout = circuit_by_name("C432").expect("exists").generate();
        let prep = prepare(&layout, &params);
        let mut data = TrainingData::default();
        data.add_layout_capped(&prep, &params, 8);
        let mut cfg = OfflineConfig::default();
        cfg.rgcn.epochs = 1;
        cfg.colorgnn.epochs = 1;
        cfg.library = mpld_matching::LibraryConfig {
            max_parent_size: 4,
            max_splits: 1,
            max_nodes: 5,
            stitches: false,
        };
        train_framework(&data, &params, &cfg)
    }

    #[test]
    fn timing_total_sums_categories() {
        let t = TimingBreakdown {
            matching: Duration::from_millis(1),
            selection: Duration::from_millis(2),
            redundancy: Duration::from_millis(3),
            colorgnn: Duration::from_millis(4),
            ilp: Duration::from_millis(5),
            ec: Duration::from_millis(6),
        };
        assert_eq!(t.total(), Duration::from_millis(21));
    }

    #[test]
    fn empty_layout_yields_empty_result() {
        let params = DecomposeParams::tpl();
        // Two far-apart features: no conflicts, no units.
        let layout = Layout {
            name: "empty".into(),
            d: 100,
            features: vec![
                mpld_geometry::Feature::new(0, vec![mpld_geometry::Rect::new(0, 0, 50, 20)]),
                mpld_geometry::Feature::new(
                    1,
                    vec![mpld_geometry::Rect::new(10_000, 0, 10_050, 20)],
                ),
            ],
        };
        let prep = prepare(&layout, &params);
        assert!(prep.units.is_empty());
        let fw = tiny_framework();
        let r = fw.decompose_prepared(&prep);
        assert_eq!(r.pipeline.cost.conflicts, 0);
        assert_eq!(r.usage, UsageBreakdown::default());
        assert!(r.unit_engines.is_empty());
        assert_eq!(r.pipeline.decomposition.feature_colors.len(), 2);
    }

    #[test]
    fn engine_usage_counts_match_units() {
        let params = DecomposeParams::tpl();
        let layout = circuit_by_name("C432").expect("exists").generate();
        let prep = prepare(&layout, &params);
        let fw = tiny_framework();
        let r = fw.decompose_prepared(&prep);
        let u = &r.usage;
        assert_eq!(u.matching + u.colorgnn + u.ilp + u.ec, prep.units.len());
        assert_eq!(r.unit_engines.len(), prep.units.len());
        // Cross-check unit_engines against the counters.
        let count = |k: EngineKind| r.unit_engines.iter().filter(|&&e| e == k).count();
        assert_eq!(count(EngineKind::Matching), u.matching);
        assert_eq!(count(EngineKind::ColorGnn), u.colorgnn);
        assert_eq!(count(EngineKind::Ilp), u.ilp);
        assert_eq!(count(EngineKind::Ec), u.ec);
    }
}
