//! The shared-state service layer, end to end: a frozen [`Engine`] must
//! reproduce the per-request serial oracle bit for bit (cold caches and
//! warm), serve concurrent sessions from one instance with identical
//! digests, reuse routing/solution caches across requests, and honor
//! deadlines by returning incumbents instead of errors.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use mpld::{
    prepare, train_framework, AdaptiveFramework, AdaptiveResult, BudgetPolicy, Engine,
    OfflineConfig, PreparedLayout, Progress, Session, TrainingData,
};
use mpld_graph::{Certainty, DecomposeParams, MockClock};
use mpld_layout::circuit_by_name;

const SEED: u64 = 0xD15EA5E;

fn trained_framework() -> AdaptiveFramework {
    let params = DecomposeParams::tpl();
    let layout = circuit_by_name("C499").expect("exists").generate();
    let prep = prepare(&layout, &params);
    let mut data = TrainingData::default();
    data.add_layout_capped(&prep, &params, 40);
    let mut cfg = OfflineConfig::default();
    cfg.rgcn.epochs = 2;
    cfg.colorgnn.epochs = 1;
    train_framework(&data, &params, &cfg)
}

/// Serial oracle + warm engine over the same weights, built once: the
/// oracle result is recorded *before* the framework moves into the
/// engine, so both see identical models.
fn fixture() -> &'static (Engine, PreparedLayout, AdaptiveResult) {
    static FIXTURE: OnceLock<(Engine, PreparedLayout, AdaptiveResult)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let fw = trained_framework();
        let params = fw.params;
        let test = prepare(
            &circuit_by_name("C432").expect("exists").generate(),
            &params,
        );
        fw.colorgnn.reseed(SEED);
        let serial = fw.decompose_prepared(&test);
        (Engine::new(fw), test, serial)
    })
}

/// The digest the parity contract covers: everything that must be
/// independent of caches, sessions, and interleaving.
fn digest(r: &AdaptiveResult) -> impl PartialEq + std::fmt::Debug + '_ {
    (
        &r.pipeline.decomposition,
        r.pipeline.cost,
        &r.unit_engines,
        r.usage,
        r.budget,
    )
}

#[test]
fn engine_request_matches_the_serial_oracle_bit_for_bit() {
    let (engine, test, serial) = fixture();

    // First request (caches possibly warmed by other tests — the parity
    // contract holds either way because cached entries are bitwise what
    // recomputation would produce).
    let mut session = Session::new(SEED);
    let first = engine.decompose(test, &mut session).expect("decomposes");
    assert_eq!(digest(&first), digest(serial));

    // Second request from a fresh session: identical digest, and now the
    // routing memo demonstrably served every representative.
    let mut events = Vec::new();
    let mut session = Session::new(SEED);
    let second = engine
        .decompose_with_progress(test, &mut session, &mut |e| events.push(e))
        .expect("decomposes");
    assert_eq!(digest(&second), digest(serial));
    assert!(
        second.inference.shared_memo_hits > 0,
        "repeated layout must hit the cross-request routing memo"
    );
    assert_eq!(second.inference.units_inferred, 0);
    assert_eq!(
        second.inference.memo_hits
            + second.inference.shared_memo_hits
            + second.inference.units_inferred,
        test.units.len()
    );
    assert!(engine.stats().routing.hits > 0);

    // Progress stream: one Routed header with the right totals, then one
    // Unit event per ILP/EC-tail unit.
    let Some(Progress::Routed {
        units,
        matched,
        colorgnn,
        routing_memo_hits,
    }) = events.first().copied()
    else {
        panic!("first event must be Routed, got {:?}", events.first());
    };
    assert_eq!(units, test.units.len());
    assert_eq!(matched, serial.usage.matching);
    assert_eq!(colorgnn, serial.usage.colorgnn);
    assert!(routing_memo_hits > 0);
    let tail_events = events
        .iter()
        .filter(|e| matches!(e, Progress::Unit { .. }))
        .count();
    assert_eq!(tail_events, serial.usage.ilp + serial.usage.ec);
    // The tail of a repeated layout is served from the solution cache.
    if tail_events > 0 {
        assert!(events
            .iter()
            .any(|e| matches!(e, Progress::Unit { cached: true, .. })));
    }
}

#[test]
fn concurrent_sessions_share_one_engine_with_serial_digests() {
    let (engine, test, serial) = fixture();
    let engine = Arc::new(engine);

    let results: Vec<AdaptiveResult> = std::thread::scope(|scope| {
        (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    let mut session = Session::new(SEED);
                    engine.decompose(test, &mut session).expect("decomposes")
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("no worker panics"))
            .collect()
    });
    for r in &results {
        assert_eq!(digest(r), digest(serial));
    }
}

#[test]
fn distinct_seeds_stay_cost_equal_and_audited() {
    // ColorGNN results are session-RNG-dependent and never cached, so a
    // different seed may color differently — but the guarded flow keeps
    // the cost pinned to the oracle (guard failures fall through to the
    // exact tail).
    let (engine, test, serial) = fixture();
    let mut session = Session::new(SEED ^ 0xFFFF);
    let r = engine.decompose(test, &mut session).expect("decomposes");
    let alpha = engine.framework().params.alpha;
    assert_eq!(
        r.pipeline.cost.value(alpha),
        serial.pipeline.cost.value(alpha)
    );
}

#[test]
fn expired_deadline_returns_incumbents_never_errors() {
    let (engine, test, _) = fixture();
    let clock = Arc::new(MockClock::new());
    let policy = BudgetPolicy {
        total: Some(Duration::from_millis(5)),
        per_unit: None,
        cancel: None,
        clock: Some(clock.clone()),
    };
    clock.advance(Duration::from_secs(1)); // expired before the first unit
    let mut session = Session::with_policy(SEED, policy);
    let r = engine.decompose(test, &mut session).expect("never errors");
    let k = engine.framework().params.k;
    assert_eq!(r.unit_outcomes.len(), test.units.len());
    for (u, coloring) in test
        .units
        .iter()
        .zip(&r.pipeline.decomposition.unit_subfeature_colorings)
    {
        assert_eq!(coloring.len(), u.hetero.num_nodes(), "full coverage");
        assert!(coloring.iter().all(|&c| c < k), "colors in 0..k");
    }
    // Expired-budget solves must never poison the cross-request solution
    // caches: a fresh unlimited session still reproduces the oracle.
    let mut session = Session::new(SEED);
    let again = engine.decompose(test, &mut session).expect("decomposes");
    let (_, _, serial) = fixture();
    assert_eq!(digest(&again), digest(serial));
    // Budget-affected certainties exist only outside the cacheable set.
    assert!(r.unit_outcomes.iter().all(|o| matches!(
        o.certainty,
        Certainty::Certified
            | Certainty::Heuristic
            | Certainty::BudgetExhausted
            | Certainty::Degraded
    )));
}
