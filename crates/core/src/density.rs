//! Mask-density analysis.
//!
//! Balanced mask densities matter for manufacturability (several works
//! the paper cites optimize density balance explicitly). The coloring
//! objective treats masks symmetrically, so densities come out roughly
//! balanced for free; this module measures them.

use mpld_layout::Layout;

/// Fraction of total feature area assigned to each mask.
///
/// `colors[f]` is the mask of feature `f` (split features are attributed
/// to their representative mask, a close approximation on wire layouts).
///
/// # Panics
///
/// Panics if `colors.len() != layout.features.len()` or a color `>= k`.
///
/// # Example
///
/// ```
/// use mpld::mask_densities;
/// use mpld_geometry::{Feature, Rect};
/// use mpld_layout::Layout;
///
/// let layout = Layout {
///     name: "t".into(),
///     d: 100,
///     features: vec![
///         Feature::new(0, vec![Rect::new(0, 0, 100, 10)]),   // area 1000
///         Feature::new(1, vec![Rect::new(0, 50, 300, 60)]),  // area 3000
///     ],
/// };
/// let d = mask_densities(&layout, &[0, 1], 3);
/// assert!((d[0] - 0.25).abs() < 1e-9);
/// assert!((d[1] - 0.75).abs() < 1e-9);
/// assert_eq!(d[2], 0.0);
/// ```
pub fn mask_densities(layout: &Layout, colors: &[u8], k: u8) -> Vec<f64> {
    assert_eq!(colors.len(), layout.features.len(), "one color per feature");
    let mut areas = vec![0i64; k as usize];
    let mut total = 0i64;
    for (f, &c) in layout.features.iter().zip(colors) {
        assert!(c < k, "color out of range");
        let a = f.area();
        areas[c as usize] += a;
        total += a;
    }
    if total == 0 {
        return vec![0.0; k as usize];
    }
    areas.into_iter().map(|a| a as f64 / total as f64).collect()
}

/// The imbalance of a density vector: `max - min` share. Zero is perfectly
/// balanced; small values indicate manufacturable mask utilization.
pub fn density_imbalance(densities: &[f64]) -> f64 {
    let max = densities.iter().cloned().fold(f64::MIN, f64::max);
    let min = densities.iter().cloned().fold(f64::MAX, f64::min);
    if densities.is_empty() {
        0.0
    } else {
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, run_pipeline};
    use mpld_graph::DecomposeParams;
    use mpld_ilp::IlpDecomposer;
    use mpld_layout::circuit_by_name;

    #[test]
    fn densities_sum_to_one() {
        let layout = circuit_by_name("C432").expect("exists").generate();
        let params = DecomposeParams::tpl();
        let prep = prepare(&layout, &params);
        let r = run_pipeline(&prep, &IlpDecomposer::new(), &params);
        let d = mask_densities(&layout, &r.decomposition.feature_colors, params.k);
        assert_eq!(d.len(), 3);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn benchmark_decompositions_are_reasonably_balanced() {
        // Symmetric objective: no mask should dominate badly.
        let layout = circuit_by_name("C880").expect("exists").generate();
        let params = DecomposeParams::tpl();
        let prep = prepare(&layout, &params);
        let r = run_pipeline(&prep, &IlpDecomposer::new(), &params);
        let d = mask_densities(&layout, &r.decomposition.feature_colors, params.k);
        assert!(
            density_imbalance(&d) < 0.5,
            "imbalance {:.2}",
            density_imbalance(&d)
        );
    }

    #[test]
    #[should_panic(expected = "one color per feature")]
    fn wrong_length_panics() {
        let layout = circuit_by_name("C432").expect("exists").generate();
        let _ = mask_densities(&layout, &[0, 1], 3);
    }

    #[test]
    fn imbalance_of_uniform_is_zero() {
        assert_eq!(density_imbalance(&[0.25, 0.25, 0.25, 0.25]), 0.0);
        assert!((density_imbalance(&[0.5, 0.3, 0.2]) - 0.3).abs() < 1e-12);
    }
}
