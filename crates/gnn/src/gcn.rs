//! Conventional GCN baseline (Eq. 15 of the paper).
//!
//! Classical GCNs only support homogeneous graphs; the paper's comparison
//! baseline multiplies messages by a fixed per-edge-type weight
//! (`alpha_e = 1` for conflict edges, `-0.1` for stitch edges) and shares
//! one learnable matrix per layer:
//! `H' = ReLU( (A_c H - 0.1 A_s H) W + H W_self )`.

use crate::{GraphEncoding, Readout, TrainConfig};
use mpld_graph::LayoutGraph;
use mpld_tensor::{Graph, Matrix, Optimizer, ParamId, ParamSet, VarId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Fixed stitch-edge message weight of the baseline.
pub const GCN_STITCH_WEIGHT: f32 = -0.1;

/// The conventional-GCN graph classifier used as Table III's baseline.
pub struct GcnClassifier {
    params: ParamSet,
    layers: Vec<(ParamId, ParamId)>, // (W, W_self)
    head: Vec<(ParamId, ParamId)>,
    readout: Readout,
    dims: Vec<usize>,
    seed: u64,
}

impl GcnClassifier {
    /// Builds an untrained baseline with the same shape as the RGCN
    /// selector (`[1, 32, 64]`, sum readout, linear head).
    pub fn selector(seed: u64) -> Self {
        Self::new(&[1, 32, 64], Readout::Sum, &[64, 2], seed)
    }

    /// Builds an untrained model; see [`crate::RgcnClassifier::new`] for
    /// the meaning of the arguments.
    ///
    /// # Panics
    ///
    /// Same shape requirements as the RGCN constructor.
    pub fn new(dims: &[usize], readout: Readout, head_dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least one GNN layer");
        assert_eq!(
            head_dims.first(),
            dims.last(),
            "head must start at the embedding dimension"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut params = ParamSet::new(Optimizer::Adam);
        let layers = dims
            .windows(2)
            .map(|w| {
                (
                    params.add(Matrix::glorot(w[0], w[1], &mut rng)),
                    params.add(Matrix::glorot(w[0], w[1], &mut rng)),
                )
            })
            .collect();
        let head = head_dims
            .windows(2)
            .map(|w| {
                let weight = params.add(Matrix::glorot(w[0], w[1], &mut rng));
                let bias = params.add(Matrix::zeros(1, w[1]));
                (weight, bias)
            })
            .collect();
        GcnClassifier {
            params,
            layers,
            head,
            readout,
            dims: dims.to_vec(),
            seed,
        }
    }

    /// Total trainable scalars.
    pub fn num_weights(&self) -> usize {
        self.params.num_weights()
    }

    fn backbone_raw(
        &self,
        g: &mut Graph,
        features: std::sync::Arc<Matrix>,
        conflict: std::sync::Arc<mpld_tensor::Adjacency>,
        stitch: std::sync::Arc<mpld_tensor::Adjacency>,
        bind: &mut dyn FnMut(&mut Graph, ParamId) -> VarId,
    ) -> VarId {
        let mut h = g.input_shared(features);
        for &(w, w_self) in &self.layers {
            let agg_c = g.agg_sum(h, conflict.clone());
            let agg_s = g.agg_sum(h, stitch.clone());
            let weighted_s = g.scale_const(agg_s, GCN_STITCH_WEIGHT);
            let mixed = g.add(agg_c, weighted_s);
            let wv = bind(g, w);
            let msg = g.matmul(mixed, wv);
            let wsv = bind(g, w_self);
            let own = g.matmul(h, wsv);
            let total = g.add(msg, own);
            h = g.relu(total);
        }
        h
    }

    fn head_raw(
        &self,
        g: &mut Graph,
        mut x: VarId,
        bind: &mut dyn FnMut(&mut Graph, ParamId) -> VarId,
    ) -> VarId {
        let n_layers = self.head.len();
        for (i, &(w, b)) in self.head.iter().enumerate() {
            let wv = bind(g, w);
            let bv = bind(g, b);
            let lin = g.matmul(x, wv);
            x = g.add_row(lin, bv);
            if i + 1 < n_layers {
                x = g.relu(x);
            }
        }
        x
    }

    fn pooled_logits(&self, g: &mut Graph, enc: &GraphEncoding) -> VarId {
        let node_emb = self.backbone_raw(
            g,
            enc.features.clone(),
            enc.conflict.clone(),
            enc.stitch.clone(),
            &mut |g, pid| self.params.bind_frozen(g, pid),
        );
        let x = match self.readout {
            Readout::Sum => g.sum_rows(node_emb),
            Readout::Max => g.max_rows(node_emb),
        };
        self.head_raw(g, x, &mut |g, pid| self.params.bind_frozen(g, pid))
    }

    /// Trains with cross-entropy on batched disjoint unions (same regime
    /// as the RGCN, for a fair Table III comparison); returns the final
    /// epoch's mean loss.
    pub fn train(&mut self, data: &[(&LayoutGraph, u8)], cfg: &TrainConfig) -> f32 {
        assert!(!data.is_empty(), "training set must not be empty");
        let mut data = if cfg.balance {
            crate::rgcn::balance_classes(data)
        } else {
            data.to_vec()
        };
        // Shuffle so minibatches mix classes (see the RGCN trainer).
        use rand::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x5u64);
        data.shuffle(&mut rng);
        let batches: Vec<(crate::BatchEncoding, Arc<Vec<u8>>)> = data
            .chunks(cfg.batch.max(1))
            .map(|chunk| {
                let graphs: Vec<&LayoutGraph> = chunk.iter().map(|(g, _)| *g).collect();
                let labels: Vec<u8> = chunk.iter().map(|(_, l)| *l).collect();
                (crate::BatchEncoding::new(&graphs), Arc::new(labels))
            })
            .collect();
        // Move the parameters out so the binder closure can borrow them
        // mutably while `self` lends the architecture immutably.
        let mut params = std::mem::replace(&mut self.params, ParamSet::new(Optimizer::Adam));
        let mut last = 0.0;
        for _ in 0..cfg.epochs {
            last = 0.0;
            for (enc, labels) in &batches {
                let mut g = Graph::new();
                let node_emb = self.backbone_raw(
                    &mut g,
                    enc.features.clone(),
                    enc.conflict.clone(),
                    enc.stitch.clone(),
                    &mut |g, pid| params.bind(g, pid),
                );
                let x = match self.readout {
                    Readout::Sum => g.segment_sum(node_emb, Arc::clone(&enc.segment), labels.len()),
                    Readout::Max => g.segment_max(node_emb, &enc.segment, labels.len()),
                };
                let x = self.head_raw(&mut g, x, &mut |g, pid| params.bind(g, pid));
                let loss = g.softmax_cross_entropy(x, Arc::clone(labels));
                last += g.value(loss).scalar() * labels.len() as f32;
                g.backward(loss);
                params.apply_grads(&g);
                params.step(cfg.lr);
            }
            last /= data.len() as f32;
        }
        self.params = params;
        last
    }

    /// Class probabilities for a batch of graphs in one pass.
    ///
    /// # Panics
    ///
    /// Panics if any graph is empty.
    pub fn predict_batch(&self, graphs: &[&LayoutGraph]) -> Vec<Vec<f32>> {
        if graphs.is_empty() {
            return Vec::new();
        }
        let enc = crate::BatchEncoding::new(graphs);
        let mut g = Graph::new();
        let node_emb = self.backbone_raw(
            &mut g,
            enc.features.clone(),
            enc.conflict.clone(),
            enc.stitch.clone(),
            &mut |g, pid| self.params.bind_frozen(g, pid),
        );
        let x = match self.readout {
            Readout::Sum => g.segment_sum(node_emb, Arc::clone(&enc.segment), graphs.len()),
            Readout::Max => g.segment_max(node_emb, &enc.segment, graphs.len()),
        };
        let x = self.head_raw(&mut g, x, &mut |g, pid| self.params.bind_frozen(g, pid));
        let probs = g.softmax_values(x);
        (0..graphs.len()).map(|i| probs.row(i).to_vec()).collect()
    }

    /// Class probabilities for one graph.
    pub fn predict(&self, graph: &LayoutGraph) -> Vec<f32> {
        let enc = GraphEncoding::new(graph);
        let mut g = Graph::new();
        let logits = self.pooled_logits(&mut g, &enc);
        let probs = g.softmax_values(logits);
        probs.row(0).to_vec()
    }
}

impl std::fmt::Debug for GcnClassifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GcnClassifier")
            .field("dims", &self.dims)
            .field("readout", &self.readout)
            .field("weights", &self.params.num_weights())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_and_predicts() {
        let tri = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let path = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2)]).unwrap();
        let data = vec![(&tri, 0u8), (&path, 1u8)];
        let mut model = GcnClassifier::selector(1);
        let loss = model.train(
            &data,
            &TrainConfig {
                epochs: 80,
                lr: 0.02,
                batch: 2,
                balance: true,
            },
        );
        assert!(loss < 0.4, "loss did not decrease: {loss}");
        assert!(model.predict(&tri)[0] > 0.5);
        assert!(model.predict(&path)[1] > 0.5);
    }

    #[test]
    fn fewer_parameters_than_rgcn_with_same_dims() {
        let gcn = GcnClassifier::selector(0);
        let rgcn = crate::RgcnClassifier::selector(0);
        assert!(gcn.params.num_weights() < rgcn.num_weights());
    }
}
