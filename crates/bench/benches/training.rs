//! Criterion bench: GNN training with the per-graph fresh-tape reference
//! versus the pooled block-diagonal batched engine. Quantifies the
//! tentpole claim that kernel-backed backward passes, tape pooling, the
//! fused optimizer step, and segment-readout minibatching make offline
//! training several times faster at identical (batch-1 bitwise) results.

use criterion::{criterion_group, criterion_main, Criterion};
use mpld::prepare;
use mpld_gnn::{ColorGnn, ColorGnnTrainConfig, RgcnClassifier, TrainConfig};
use mpld_graph::{DecomposeParams, LayoutGraph};
use mpld_layout::circuit_by_name;

fn unit_graphs(n: usize) -> Vec<LayoutGraph> {
    let params = DecomposeParams::tpl();
    let layout = circuit_by_name("C1355").expect("known circuit").generate();
    let prep = prepare(&layout, &params);
    prep.units
        .iter()
        .take(n)
        .map(|u| u.hetero.clone())
        .collect()
}

fn bench_training(c: &mut Criterion) {
    let graphs = unit_graphs(48);
    // Alternating labels keep both classes populated without exact solves.
    let data: Vec<(&LayoutGraph, u8)> = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| (g, (i % 2) as u8))
        .collect();
    let parents: Vec<LayoutGraph> = graphs
        .iter()
        .filter(|g| g.num_nodes() > 0 && !g.conflict_edges().is_empty())
        .map(|g| g.merge_stitch_edges().0)
        .collect();
    let parent_refs: Vec<&LayoutGraph> = parents.iter().collect();

    let rgcn_cfg = |batch: usize| TrainConfig {
        epochs: 2,
        lr: 0.01,
        batch,
        balance: false,
    };
    let color_cfg = |batch: usize| ColorGnnTrainConfig {
        epochs: 2,
        lr: 0.02,
        margin: 1.0,
        batch,
    };

    let mut group = c.benchmark_group("training");

    group.bench_function("rgcn_reference_batch1_x48", |b| {
        b.iter(|| {
            let mut model = RgcnClassifier::selector(7);
            model.train_reference(&data, &rgcn_cfg(1))
        })
    });

    group.bench_function("rgcn_batched_x48", |b| {
        b.iter(|| {
            let mut model = RgcnClassifier::selector(7);
            model.train(&data, &rgcn_cfg(16))
        })
    });

    group.bench_function("colorgnn_reference_batch1", |b| {
        b.iter(|| {
            let mut model = ColorGnn::new(7);
            model.train_reference(&parent_refs, 3, &color_cfg(1))
        })
    });

    group.bench_function("colorgnn_batched", |b| {
        b.iter(|| {
            let mut model = ColorGnn::new(7);
            model.train(&parent_refs, 3, &color_cfg(16))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
