//! Graph → tensor encoding shared by all GNN models.

use mpld_graph::LayoutGraph;
use mpld_tensor::infer::{Csr, CsrBuilder};
use mpld_tensor::{Adjacency, Matrix};
use std::sync::Arc;

/// The per-node input feature of Eq. (8):
/// `h0_i = sum_j 1{e_ij in CE} + alpha * 1{e_ij in SE}` with the paper's
/// `alpha = -0.1` — i.e. conflict degree minus a tenth of the stitch
/// degree, a one-dimensional, node-order-invariant signal.
pub const INPUT_ALPHA: f32 = -0.1;

/// Input features are divided by this constant so sum-pooled activations
/// stay in a range where softmax gradients do not saturate (standard
/// feature scaling; without it both classifier heads collapse to
/// constant prior predictions).
pub const INPUT_SCALE: f32 = 0.2;

/// Tensor view of a layout graph: input features plus one adjacency per
/// edge type, ready to feed the GNN layers.
#[derive(Debug, Clone)]
pub struct GraphEncoding {
    /// `n x 1` input features (Eq. 8), shared so forward passes can put
    /// them on the tape without cloning the data.
    pub features: Arc<Matrix>,
    /// Conflict-edge adjacency.
    pub conflict: Arc<Adjacency>,
    /// Stitch-edge adjacency.
    pub stitch: Arc<Adjacency>,
}

impl GraphEncoding {
    /// Encodes `graph`.
    ///
    /// # Example
    ///
    /// ```
    /// use mpld_graph::LayoutGraph;
    /// use mpld_gnn::{GraphEncoding, INPUT_SCALE};
    ///
    /// let g = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2)]).unwrap();
    /// let enc = GraphEncoding::new(&g);
    /// assert_eq!(enc.features.rows(), 3);
    /// assert_eq!(enc.features[(1, 0)], 2.0 * INPUT_SCALE); // conflict degree 2
    /// ```
    pub fn new(graph: &LayoutGraph) -> Self {
        let n = graph.num_nodes();
        let mut features = Matrix::zeros(n, 1);
        for v in 0..n as u32 {
            features[(v as usize, 0)] = (graph.conflict_degree(v) as f32
                + INPUT_ALPHA * graph.stitch_neighbors(v).len() as f32)
                * INPUT_SCALE;
        }
        let conflict = Arc::new(Adjacency::new(
            (0..n as u32)
                .map(|v| graph.conflict_neighbors(v).to_vec())
                .collect(),
        ));
        let stitch = Arc::new(Adjacency::new(
            (0..n as u32)
                .map(|v| graph.stitch_neighbors(v).to_vec())
                .collect(),
        ));
        GraphEncoding {
            features: Arc::new(features),
            conflict,
            stitch,
        }
    }
}

/// A disjoint union of layout graphs encoded as one tensor batch —
/// the paper batches simplified graphs for efficient inference.
#[derive(Debug, Clone)]
pub struct BatchEncoding {
    /// `total_nodes x 1` input features, shared so forward passes can
    /// put them on the tape without cloning the data.
    pub features: Arc<Matrix>,
    /// Conflict adjacency over the union.
    pub conflict: Arc<Adjacency>,
    /// Stitch adjacency over the union.
    pub stitch: Arc<Adjacency>,
    /// `segment[r]` = index of the graph node `r` belongs to, shared so
    /// per-step tapes can record segment readouts without cloning it.
    pub segment: Arc<Vec<u32>>,
    /// First node index of each graph (plus a final sentinel).
    pub offsets: Vec<usize>,
}

impl BatchEncoding {
    /// Encodes the disjoint union of `graphs`.
    ///
    /// # Panics
    ///
    /// Panics if any graph has zero nodes (there is nothing to pool).
    pub fn new(graphs: &[&LayoutGraph]) -> Self {
        let total: usize = graphs.iter().map(|g| g.num_nodes()).sum();
        let mut features = Matrix::zeros(total, 1);
        let mut conflict = Vec::with_capacity(total);
        let mut stitch = Vec::with_capacity(total);
        let mut segment = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(graphs.len() + 1);
        let mut base = 0u32;
        for (gi, g) in graphs.iter().enumerate() {
            assert!(g.num_nodes() > 0, "batched graphs must be non-empty");
            offsets.push(base as usize);
            for v in 0..g.num_nodes() as u32 {
                features[((base + v) as usize, 0)] = (g.conflict_degree(v) as f32
                    + INPUT_ALPHA * g.stitch_neighbors(v).len() as f32)
                    * INPUT_SCALE;
                conflict.push(g.conflict_neighbors(v).iter().map(|&w| w + base).collect());
                stitch.push(g.stitch_neighbors(v).iter().map(|&w| w + base).collect());
                segment.push(gi as u32);
            }
            base += g.num_nodes() as u32;
        }
        offsets.push(base as usize);
        BatchEncoding {
            features: Arc::new(features),
            conflict: Arc::new(Adjacency::new(conflict)),
            stitch: Arc::new(Adjacency::new(stitch)),
            segment: Arc::new(segment),
            offsets,
        }
    }

    /// Number of graphs in the batch.
    pub fn num_graphs(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// The tape-free twin of [`BatchEncoding`]: the same disjoint-union
/// features (identical formula, identical order, hence identical bits)
/// with CSR adjacencies instead of [`Adjacency`] — no reverse lists, no
/// per-node `Vec`s — ready for the frozen inference engines.
#[derive(Debug, Clone)]
pub struct InferBatch {
    /// `total_nodes x 1` input features, flattened row-major.
    pub features: Vec<f32>,
    /// Conflict CSR over the union.
    pub conflict: Csr,
    /// Stitch CSR over the union.
    pub stitch: Csr,
    /// `segment[r]` = index of the graph node `r` belongs to.
    pub segment: Vec<u32>,
    /// First node index of each graph (plus a final sentinel).
    pub offsets: Vec<usize>,
}

impl InferBatch {
    /// Encodes the disjoint union of `graphs`.
    ///
    /// # Panics
    ///
    /// Panics if any graph has zero nodes (there is nothing to pool).
    pub fn new(graphs: &[&LayoutGraph]) -> Self {
        let total: usize = graphs.iter().map(|g| g.num_nodes()).sum();
        let mut features = Vec::with_capacity(total);
        let mut conflict = CsrBuilder::new(total);
        let mut stitch = CsrBuilder::new(total);
        let mut segment = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(graphs.len() + 1);
        let mut base = 0u32;
        for (gi, g) in graphs.iter().enumerate() {
            assert!(g.num_nodes() > 0, "batched graphs must be non-empty");
            offsets.push(base as usize);
            for v in 0..g.num_nodes() as u32 {
                features.push(
                    (g.conflict_degree(v) as f32
                        + INPUT_ALPHA * g.stitch_neighbors(v).len() as f32)
                        * INPUT_SCALE,
                );
                conflict.push_row(g.conflict_neighbors(v).iter().map(|&w| w + base));
                stitch.push_row(g.stitch_neighbors(v).iter().map(|&w| w + base));
                segment.push(gi as u32);
            }
            base += g.num_nodes() as u32;
        }
        offsets.push(base as usize);
        InferBatch {
            features,
            conflict: conflict.finish(),
            stitch: stitch.finish(),
            segment,
            offsets,
        }
    }

    /// Encodes a single graph (a batch of one).
    ///
    /// # Panics
    ///
    /// Panics if the graph has zero nodes.
    pub fn single(graph: &LayoutGraph) -> Self {
        InferBatch::new(&[graph])
    }

    /// Number of graphs in the batch.
    pub fn num_graphs(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total node count across the batch.
    pub fn num_nodes(&self) -> usize {
        self.features.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_encoding_offsets_and_features() {
        let a = LayoutGraph::homogeneous(2, vec![(0, 1)]).unwrap();
        let b = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let enc = BatchEncoding::new(&[&a, &b]);
        assert_eq!(enc.num_graphs(), 2);
        assert_eq!(enc.offsets, vec![0, 2, 5]);
        assert_eq!(*enc.segment, vec![0, 0, 1, 1, 1]);
        assert_eq!(enc.features[(0, 0)], 1.0 * INPUT_SCALE);
        assert_eq!(enc.features[(2, 0)], 2.0 * INPUT_SCALE);
    }

    #[test]
    fn features_follow_eq8() {
        let g = LayoutGraph::new(vec![0, 0, 1], vec![(0, 2), (1, 2)], vec![(0, 1)]).unwrap();
        let enc = GraphEncoding::new(&g);
        assert_eq!(enc.features[(0, 0)], (1.0 - 0.1) * INPUT_SCALE);
        assert_eq!(enc.features[(1, 0)], (1.0 - 0.1) * INPUT_SCALE);
        assert_eq!(enc.features[(2, 0)], 2.0 * INPUT_SCALE);
    }

    #[test]
    fn encoding_is_node_order_dependent_only_through_ids() {
        // Same structure, different node order: multiset of features equal.
        let g1 = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2)]).unwrap();
        let g2 = LayoutGraph::homogeneous(3, vec![(1, 2), (0, 1)]).unwrap();
        let mut f1: Vec<f32> = GraphEncoding::new(&g1).features.as_slice().to_vec();
        let mut f2: Vec<f32> = GraphEncoding::new(&g2).features.as_slice().to_vec();
        f1.sort_by(f32::total_cmp);
        f2.sort_by(f32::total_cmp);
        assert_eq!(f1, f2);
    }
}
