//! Table I — qualitative comparison among decomposers, backed by a small
//! measured exhibit on one benchmark circuit.

use mpld::{prepare, run_pipeline};
use mpld_bench::{fmt_duration, print_table};
use mpld_ec::EcDecomposer;
use mpld_graph::{DecomposeParams, Decomposer};
use mpld_ilp::encode::BipDecomposer;
use mpld_ilp::IlpDecomposer;
use mpld_layout::circuit_by_name;
use mpld_sdp::SdpDecomposer;

fn main() {
    println!("Table I: comparison among different decomposers\n");
    print_table(
        &[
            "decomposer",
            "quality",
            "efficiency",
            "flexibility",
            "stitch",
        ],
        &[
            vec![
                "ILP".into(),
                "optimal".into(),
                "low".into(),
                "low".into(),
                "yes".into(),
            ],
            vec![
                "SDP".into(),
                "near-opt".into(),
                "medium".into(),
                "medium".into(),
                "yes".into(),
            ],
            vec![
                "EC".into(),
                "near-opt".into(),
                "high".into(),
                "high".into(),
                "yes".into(),
            ],
            vec![
                "Matching".into(),
                "optimal*".into(),
                "highest".into(),
                "low (small graphs)".into(),
                "yes (this work)".into(),
            ],
            vec![
                "ColorGNN".into(),
                "near-opt".into(),
                "high (batched)".into(),
                "high".into(),
                "no".into(),
            ],
        ],
    );
    println!("\n* optimal for graphs stored in the library (solutions come from ILP)\n");

    // Measured exhibit on C880 using identical preprocessing.
    let params = DecomposeParams::tpl();
    let layout = circuit_by_name("C880").expect("known circuit").generate();
    let prep = prepare(&layout, &params);
    println!(
        "measured exhibit on {} ({} units after simplification):",
        layout.name,
        prep.units.len()
    );
    let engines: Vec<Box<dyn Decomposer>> = vec![
        Box::new(BipDecomposer::new()),
        Box::new(IlpDecomposer::new()),
        Box::new(SdpDecomposer::new()),
        Box::new(EcDecomposer::new()),
    ];
    let mut rows = Vec::new();
    for e in &engines {
        let r = run_pipeline(&prep, e.as_ref(), &params);
        rows.push(vec![
            e.name().to_string(),
            format!("{:.1}", r.cost.value(params.alpha)),
            r.cost.conflicts.to_string(),
            r.cost.stitches.to_string(),
            fmt_duration(r.decompose_time),
        ]);
    }
    print_table(&["engine", "cost", "cn#", "st#", "runtime"], &rows);
    println!("\n(ILP = faithful Eq. 3 encoding on the 0-1 solver; ILP-BB = the fast exact");
    println!(" branch-and-bound used internally for labels and library solutions)");
}
