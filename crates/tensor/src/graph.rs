//! Tape-based reverse-mode automatic differentiation over [`Matrix`]
//! values.
//!
//! A [`Graph`] records every forward operation; [`Graph::backward`]
//! replays the tape in reverse, accumulating gradients. The operation set
//! is exactly what the MPLD networks need: dense linear algebra, ReLU,
//! sparse neighbor aggregation, sum/max readouts, softmax cross-entropy,
//! and the pairwise margin loss that trains ColorGNN.

use crate::infer::{self, Csr, CsrBuilder, Scratch};
use crate::Matrix;
use std::sync::Arc;

/// Handle to a value in the autodiff graph.
pub type VarId = usize;

/// Sparse adjacency used by [`Graph::agg_sum`]: row `i` of `fwd` lists
/// the rows summed into output row `i`. Both directions are stored in
/// CSR form so the tape's forward *and* backward aggregation run through
/// the shared [`infer::spmm_into`] kernel; the reverse matrix is derived
/// on construction so backprop is a plain re-aggregation.
#[derive(Debug, Clone)]
pub struct Adjacency {
    fwd: Csr,
    rev: Csr,
}

impl Adjacency {
    /// Builds an adjacency over `n` rows.
    ///
    /// # Panics
    ///
    /// Panics if a neighbor index is out of range.
    pub fn new(fwd: Vec<Vec<u32>>) -> Self {
        let mut b = CsrBuilder::new(fwd.len());
        for ns in &fwd {
            b.push_row(ns.iter().copied());
        }
        Self::from_csr(b.finish())
    }

    /// Builds an adjacency directly from a CSR forward matrix — the
    /// allocation-light path for callers that assemble block-diagonal
    /// minibatch adjacencies row by row with a [`CsrBuilder`].
    ///
    /// # Panics
    ///
    /// Panics if a neighbor index is out of range.
    pub fn from_csr(fwd: Csr) -> Self {
        assert!(
            fwd.max_col_bound() <= fwd.num_rows(),
            "neighbor index out of range"
        );
        let rev = fwd.transpose();
        Adjacency { fwd, rev }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.fwd.num_rows()
    }

    /// Whether the adjacency is empty.
    pub fn is_empty(&self) -> bool {
        self.fwd.num_rows() == 0
    }

    /// The rows summed into output row `i` (the forward neighbor list, in
    /// insertion order — the order [`Graph::agg_sum`] accumulates in).
    pub fn neighbors(&self, i: usize) -> &[u32] {
        self.fwd.row(i)
    }

    /// The forward CSR matrix (`out[i] = Σ x[fwd.row(i)]`).
    pub(crate) fn fwd_csr(&self) -> &Csr {
        &self.fwd
    }

    /// The reverse CSR matrix: row `j` lists, in ascending order, the
    /// outputs `i` that row `j` contributed to — the backward
    /// aggregation pattern.
    pub(crate) fn rev_csr(&self) -> &Csr {
        &self.rev
    }
}

enum Op {
    Leaf,
    /// C = A * B.
    MatMul(VarId, VarId),
    /// C = A + B (same shape).
    Add(VarId, VarId),
    /// C = A + row-broadcast b (1 x d).
    AddRow(VarId, VarId),
    /// C = relu(A).
    Relu(VarId),
    /// C = s * A for a constant s.
    ScaleConst(VarId, f32),
    /// C = scalar-var * A (scalar is a 1 x 1 var).
    ScaleByScalar(VarId, VarId),
    /// C[i] = sum_{j in adj[i]} A[j].
    AggSum(VarId, Arc<Adjacency>),
    /// 1 x d row: sum of all rows of A.
    SumRows(VarId),
    /// 1 x d row: column-wise max of A; remembers argmax rows.
    MaxRows(VarId, Vec<u32>),
    /// k x d: per-segment row sums (`seg[r]` = output row of input row r).
    SegmentSum(VarId, Arc<Vec<u32>>),
    /// k x d: per-segment column-wise max; remembers argmax rows.
    SegmentMax(VarId, Vec<u32>),
    /// Row-wise L2 normalization; caches the row norms.
    RowNormalize(VarId, Vec<f32>),
    /// Scalar: mean softmax cross-entropy of logits (n x C) vs labels.
    SoftmaxCrossEntropy(VarId, Arc<Vec<u8>>, Matrix),
    /// Scalar: sum over edges of max(margin - ||x_u - x_v||^2, 0).
    MarginPairLoss(VarId, Arc<Vec<(u32, u32)>>, f32),
}

/// Storage for a node's forward value. Computed nodes own their matrix;
/// inputs inserted via [`Graph::input_shared`] borrow one through an
/// `Arc`, so hot callers (the GNN encodings, whose feature matrices
/// outlive any single tape) stop cloning them onto every forward pass.
enum Stored {
    Owned(Matrix),
    Shared(Arc<Matrix>),
}

impl Stored {
    fn get(&self) -> &Matrix {
        match self {
            Stored::Owned(m) => m,
            Stored::Shared(m) => m,
        }
    }
}

struct Node {
    op: Op,
    value: Stored,
    grad: Option<Matrix>,
    needs_grad: bool,
}

/// The autodiff tape (see module docs).
///
/// Op outputs, gradients, and backward deltas are carved out of an
/// internal [`Scratch`] free list; [`Graph::reset`] hands every buffer
/// back, so a training loop that reuses one `Graph` across steps does
/// zero steady-state heap allocation.
///
/// # Example
///
/// ```
/// use mpld_tensor::{Graph, Matrix};
///
/// let mut g = Graph::new();
/// let x = g.param(Matrix::from_rows(&[&[2.0]]));
/// let y = g.scale_const(x, 3.0); // y = 3x
/// g.backward(y);
/// assert_eq!(g.grad(x).scalar(), 3.0);
/// ```
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    scratch: Scratch,
    free_u32: Vec<Vec<u32>>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Clears the tape for the next step, recycling every op output,
    /// gradient, and cached backward payload into the internal free
    /// lists. Shared inputs ([`Graph::input_shared`]) are merely
    /// released.
    pub fn reset(&mut self) {
        let Graph {
            nodes,
            scratch,
            free_u32,
        } = self;
        for node in nodes.drain(..) {
            if let Stored::Owned(m) = node.value {
                scratch.put(m.into_data());
            }
            if let Some(g) = node.grad {
                scratch.put(g.into_data());
            }
            match node.op {
                Op::MaxRows(_, arg) | Op::SegmentMax(_, arg) => free_u32.push(arg),
                Op::RowNormalize(_, norms) => scratch.put(norms),
                Op::SoftmaxCrossEntropy(_, _, probs) => scratch.put(probs.into_data()),
                _ => {}
            }
        }
    }

    /// Peak bytes concurrently checked out of the tape's scratch — the
    /// training arena's steady-state working set.
    pub fn scratch_high_water_bytes(&self) -> usize {
        self.scratch.high_water_bytes()
    }

    /// A zeroed `rows x cols` matrix carved from the scratch free list.
    fn alloc(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.scratch.take(rows * cols))
    }

    /// A recycled `u32` buffer of `len` entries, every slot set to
    /// `fill`.
    fn take_u32(&mut self, len: usize, fill: u32) -> Vec<u32> {
        let mut v = self.free_u32.pop().unwrap_or_default();
        v.clear();
        v.resize(len, fill);
        v
    }

    fn push(&mut self, op: Op, value: Matrix, needs_grad: bool) -> VarId {
        self.nodes.push(Node {
            op,
            value: Stored::Owned(value),
            grad: None,
            needs_grad,
        });
        self.nodes.len() - 1
    }

    /// Inserts a constant input (no gradient is tracked).
    pub fn input(&mut self, value: Matrix) -> VarId {
        self.push(Op::Leaf, value, false)
    }

    /// Inserts a constant input backed by a shared matrix (no gradient,
    /// and — unlike [`Graph::input`] — no copy of the data).
    pub fn input_shared(&mut self, value: Arc<Matrix>) -> VarId {
        self.nodes.push(Node {
            op: Op::Leaf,
            value: Stored::Shared(value),
            grad: None,
            needs_grad: false,
        });
        self.nodes.len() - 1
    }

    /// Inserts a trainable leaf (gradient is accumulated).
    pub fn param(&mut self, value: Matrix) -> VarId {
        self.push(Op::Leaf, value, true)
    }

    /// Inserts a trainable leaf by copying `value` into a pooled buffer —
    /// the allocation-free variant of [`Graph::param`] for training loops
    /// that re-bind the same parameters every step.
    pub fn param_copied(&mut self, value: &Matrix) -> VarId {
        let mut v = self.alloc(value.rows(), value.cols());
        v.as_mut_slice().copy_from_slice(value.as_slice());
        self.push(Op::Leaf, v, true)
    }

    /// The current value of `id`.
    pub fn value(&self, id: VarId) -> &Matrix {
        self.nodes[id].value.get()
    }

    /// The gradient of the last [`Graph::backward`] target w.r.t. `id`.
    ///
    /// # Panics
    ///
    /// Panics if no gradient was computed for `id` (not reachable from the
    /// loss, or `backward` not called).
    pub fn grad(&self, id: VarId) -> &Matrix {
        #[allow(clippy::expect_used)] // documented panic contract (see above)
        self.nodes[id]
            .grad
            .as_ref()
            .expect("gradient not computed; call backward on a reachable loss first")
    }

    /// The gradient of `id`, or `None` when `id` was not reached by the
    /// last backward pass.
    pub fn try_grad(&self, id: VarId) -> Option<&Matrix> {
        self.nodes[id].grad.as_ref()
    }

    fn needs(&self, id: VarId) -> bool {
        self.nodes[id].needs_grad
    }

    /// `a * b`, dispatched through the shared [`infer::gemm_into`]
    /// kernel.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let (m, kk) = {
            let av = self.nodes[a].value.get();
            (av.rows(), av.cols())
        };
        let (bk, n) = {
            let bv = self.nodes[b].value.get();
            (bv.rows(), bv.cols())
        };
        assert_eq!(kk, bk, "inner dimensions must agree");
        let mut v = self.alloc(m, n);
        infer::gemm_into(
            m,
            kk,
            n,
            self.nodes[a].value.get().as_slice(),
            self.nodes[b].value.get().as_slice(),
            v.as_mut_slice(),
        );
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::MatMul(a, b), v, ng)
    }

    /// `a + b` (same shape).
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let (rows, cols) = {
            let av = self.nodes[a].value.get();
            (av.rows(), av.cols())
        };
        let mut v = self.alloc(rows, cols);
        v.as_mut_slice()
            .copy_from_slice(self.nodes[a].value.get().as_slice());
        v.add_assign(self.nodes[b].value.get());
        let ng = self.needs(a) || self.needs(b);
        self.push(Op::Add(a, b), v, ng)
    }

    /// `a + bias` broadcasting the `1 x d` bias over rows.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x a.cols`.
    pub fn add_row(&mut self, a: VarId, bias: VarId) -> VarId {
        let (rows, cols) = {
            let b = self.nodes[bias].value.get();
            assert_eq!(b.rows(), 1, "bias must be a single row");
            let a_val = self.nodes[a].value.get();
            assert_eq!(b.cols(), a_val.cols(), "bias width mismatch");
            (a_val.rows(), a_val.cols())
        };
        let mut v = self.alloc(rows, cols);
        v.as_mut_slice()
            .copy_from_slice(self.nodes[a].value.get().as_slice());
        infer::add_row_in_place(
            v.as_mut_slice(),
            cols,
            self.nodes[bias].value.get().as_slice(),
        );
        let ng = self.needs(a) || self.needs(bias);
        self.push(Op::AddRow(a, bias), v, ng)
    }

    /// Element-wise ReLU.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let (rows, cols) = {
            let av = self.nodes[a].value.get();
            (av.rows(), av.cols())
        };
        let mut v = self.alloc(rows, cols);
        v.as_mut_slice()
            .copy_from_slice(self.nodes[a].value.get().as_slice());
        infer::relu_in_place(v.as_mut_slice());
        let ng = self.needs(a);
        self.push(Op::Relu(a), v, ng)
    }

    /// `s * a` for a constant scalar.
    pub fn scale_const(&mut self, a: VarId, s: f32) -> VarId {
        let (rows, cols) = {
            let av = self.nodes[a].value.get();
            (av.rows(), av.cols())
        };
        let mut v = self.alloc(rows, cols);
        for (o, &x) in v
            .as_mut_slice()
            .iter_mut()
            .zip(self.nodes[a].value.get().as_slice())
        {
            *o = x * s;
        }
        let ng = self.needs(a);
        self.push(Op::ScaleConst(a, s), v, ng)
    }

    /// `scalar * a` where `scalar` is a trainable `1 x 1` variable.
    ///
    /// # Panics
    ///
    /// Panics if `scalar` is not `1 x 1`.
    pub fn scale_by_scalar(&mut self, a: VarId, scalar: VarId) -> VarId {
        let s = self.nodes[scalar].value.get().scalar();
        let (rows, cols) = {
            let av = self.nodes[a].value.get();
            (av.rows(), av.cols())
        };
        let mut v = self.alloc(rows, cols);
        for (o, &x) in v
            .as_mut_slice()
            .iter_mut()
            .zip(self.nodes[a].value.get().as_slice())
        {
            *o = x * s;
        }
        let ng = self.needs(a) || self.needs(scalar);
        self.push(Op::ScaleByScalar(a, scalar), v, ng)
    }

    /// Sparse neighbor aggregation: `out[i] = sum_{j in adj[i]} a[j]`,
    /// dispatched through the shared [`infer::spmm_into`] kernel.
    ///
    /// # Panics
    ///
    /// Panics if `adj.len() != a.rows()`.
    pub fn agg_sum(&mut self, a: VarId, adj: Arc<Adjacency>) -> VarId {
        let (rows, cols) = {
            let x = self.nodes[a].value.get();
            assert_eq!(adj.len(), x.rows(), "adjacency size mismatch");
            (x.rows(), x.cols())
        };
        let mut v = self.alloc(rows, cols);
        infer::spmm_into(
            adj.fwd_csr(),
            self.nodes[a].value.get().as_slice(),
            cols,
            v.as_mut_slice(),
        );
        let ng = self.needs(a);
        self.push(Op::AggSum(a, adj), v, ng)
    }

    /// Graph readout: `1 x d` sum of all rows.
    pub fn sum_rows(&mut self, a: VarId) -> VarId {
        let (rows, cols) = {
            let x = self.nodes[a].value.get();
            (x.rows(), x.cols())
        };
        let mut v = self.alloc(1, cols);
        {
            let x = self.nodes[a].value.get();
            for r in 0..rows {
                for c in 0..cols {
                    v[(0, c)] += x[(r, c)];
                }
            }
        }
        let ng = self.needs(a);
        self.push(Op::SumRows(a), v, ng)
    }

    /// Graph readout: `1 x d` column-wise max of all rows.
    ///
    /// # Panics
    ///
    /// Panics if `a` has no rows.
    pub fn max_rows(&mut self, a: VarId) -> VarId {
        let (rows, cols) = {
            let x = self.nodes[a].value.get();
            assert!(x.rows() > 0, "max over zero rows");
            (x.rows(), x.cols())
        };
        let mut v = self.alloc(1, cols);
        let mut arg = self.take_u32(cols, 0);
        {
            let x = self.nodes[a].value.get();
            for c in 0..cols {
                let mut best = f32::NEG_INFINITY;
                for r in 0..rows {
                    if x[(r, c)] > best {
                        best = x[(r, c)];
                        arg[c] = r as u32;
                    }
                }
                v[(0, c)] = best;
            }
        }
        let ng = self.needs(a);
        self.push(Op::MaxRows(a, arg), v, ng)
    }

    /// Batched graph readout: `out[s] = sum of rows r with seg[r] == s`,
    /// producing a `num_segments x d` matrix. Used to pool node embeddings
    /// of a disjoint union of graphs into per-graph embeddings.
    ///
    /// # Panics
    ///
    /// Panics if `seg.len() != a.rows()` or a segment id is
    /// `>= num_segments`.
    pub fn segment_sum(&mut self, a: VarId, seg: Arc<Vec<u32>>, num_segments: usize) -> VarId {
        let cols = {
            let x = self.nodes[a].value.get();
            assert_eq!(seg.len(), x.rows(), "one segment id per row");
            x.cols()
        };
        let mut v = self.alloc(num_segments, cols);
        infer::segment_sum_into(
            self.nodes[a].value.get().as_slice(),
            cols,
            &seg,
            num_segments,
            v.as_mut_slice(),
        );
        let ng = self.needs(a);
        self.push(Op::SegmentSum(a, seg), v, ng)
    }

    /// Batched max readout: `out[s]` is the column-wise max over rows with
    /// `seg[r] == s`. Every segment must be non-empty.
    ///
    /// # Panics
    ///
    /// Panics on length/range mismatch or an empty segment.
    pub fn segment_max(&mut self, a: VarId, seg: &[u32], num_segments: usize) -> VarId {
        let cols = {
            let x = self.nodes[a].value.get();
            assert_eq!(seg.len(), x.rows(), "one segment id per row");
            x.cols()
        };
        let mut v = self.alloc(num_segments, cols);
        let mut arg = self.take_u32(num_segments * cols, u32::MAX);
        infer::segment_max_argmax_into(
            self.nodes[a].value.get().as_slice(),
            cols,
            seg,
            num_segments,
            v.as_mut_slice(),
            &mut arg,
        );
        let ng = self.needs(a);
        self.push(Op::SegmentMax(a, arg), v, ng)
    }

    /// Row-wise L2 normalization: `y_r = x_r / max(||x_r||, eps)`. Makes
    /// downstream losses scale-invariant (used by the ColorGNN margin
    /// loss so belief magnitudes cannot trivially satisfy the margin).
    pub fn row_l2_normalize(&mut self, a: VarId) -> VarId {
        let (rows, cols) = {
            let x = self.nodes[a].value.get();
            (x.rows(), x.cols())
        };
        let mut v = self.alloc(rows, cols);
        v.as_mut_slice()
            .copy_from_slice(self.nodes[a].value.get().as_slice());
        let mut norms = self.scratch.take(rows);
        {
            let x = self.nodes[a].value.get();
            for r in 0..rows {
                let norm = x
                    .row(r)
                    .iter()
                    .map(|&e| e * e)
                    .sum::<f32>()
                    .sqrt()
                    .max(1e-6);
                norms[r] = norm;
                for c in 0..cols {
                    v[(r, c)] /= norm;
                }
            }
        }
        let ng = self.needs(a);
        self.push(Op::RowNormalize(a, norms), v, ng)
    }

    /// Mean softmax cross-entropy between `logits` (`n x C`) and integer
    /// `labels` (`n` entries `< C`). Returns a `1 x 1` loss.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != logits.rows()` or a label is out of range.
    pub fn softmax_cross_entropy(&mut self, logits: VarId, labels: Arc<Vec<u8>>) -> VarId {
        let (n, c) = {
            let x = self.nodes[logits].value.get();
            (x.rows(), x.cols())
        };
        assert_eq!(labels.len(), n, "one label per row");
        assert!(
            labels.iter().all(|&l| (l as usize) < c),
            "label out of range"
        );
        // Cache softmax probabilities for the backward pass.
        let mut probs = self.alloc(n, c);
        let mut loss = 0.0f32;
        {
            let x = self.nodes[logits].value.get();
            for r in 0..n {
                let row = x.row(r);
                let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
                let mut z = 0.0;
                for (j, &v) in row.iter().enumerate() {
                    let e = (v - max).exp();
                    probs[(r, j)] = e;
                    z += e;
                }
                for j in 0..c {
                    probs[(r, j)] /= z;
                }
                loss -= probs[(r, labels[r] as usize)].max(1e-12).ln();
            }
        }
        loss /= n.max(1) as f32;
        let mut out = self.alloc(1, 1);
        out[(0, 0)] = loss;
        let ng = self.needs(logits);
        self.push(Op::SoftmaxCrossEntropy(logits, labels, probs), out, ng)
    }

    /// Softmax probabilities of `logits` (`n x C`), computed outside the
    /// tape (no gradient).
    pub fn softmax_values(&self, logits: VarId) -> Matrix {
        let x = self.nodes[logits].value.get();
        let (n, c) = (x.rows(), x.cols());
        let mut probs = Matrix::zeros(n, c);
        for r in 0..n {
            let row = x.row(r);
            let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let mut z = 0.0;
            for (j, &v) in row.iter().enumerate() {
                let e = (v - max).exp();
                probs[(r, j)] = e;
                z += e;
            }
            for j in 0..c {
                probs[(r, j)] /= z;
            }
        }
        probs
    }

    /// The ColorGNN margin loss (Eq. 14): for each edge `(u, v)`,
    /// `max(margin - ||x_u - x_v||^2, 0)`, summed. Returns a `1 x 1` loss.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range.
    pub fn margin_pair_loss(
        &mut self,
        x: VarId,
        edges: Arc<Vec<(u32, u32)>>,
        margin: f32,
    ) -> VarId {
        let mut loss = 0.0f32;
        {
            let m = self.nodes[x].value.get();
            for &(u, v) in edges.iter() {
                assert!(
                    (u as usize) < m.rows() && (v as usize) < m.rows(),
                    "edge out of range"
                );
                let d2: f32 = m
                    .row(u as usize)
                    .iter()
                    .zip(m.row(v as usize))
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum();
                loss += (margin - d2).max(0.0);
            }
        }
        let mut out = self.alloc(1, 1);
        out[(0, 0)] = loss;
        let ng = self.needs(x);
        self.push(Op::MarginPairLoss(x, edges, margin), out, ng)
    }

    /// Adds `delta` into `id`'s gradient, installing it outright when the
    /// slot is empty and recycling its buffer otherwise.
    fn accumulate(&mut self, id: VarId, delta: Matrix) {
        if self.nodes[id].grad.is_none() {
            self.nodes[id].grad = Some(delta);
            return;
        }
        if let Some(g) = self.nodes[id].grad.as_mut() {
            g.add_assign(&delta);
        }
        self.scratch.put(delta.into_data());
    }

    /// Adds `delta` into `id`'s gradient by reference — for pass-through
    /// ops whose delta IS the incoming gradient (which must survive to be
    /// restored on its own node).
    fn accumulate_ref(&mut self, id: VarId, delta: &Matrix) {
        if let Some(g) = self.nodes[id].grad.as_mut() {
            g.add_assign(delta);
            return;
        }
        let mut buf = self.scratch.take(delta.rows() * delta.cols());
        buf.copy_from_slice(delta.as_slice());
        self.nodes[id].grad = Some(Matrix::from_vec(delta.rows(), delta.cols(), buf));
    }

    /// Backpropagates from the `1 x 1` loss variable, filling gradients of
    /// all reachable variables that need them.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not `1 x 1`.
    pub fn backward(&mut self, loss: VarId) {
        assert_eq!(
            (
                self.nodes[loss].value.get().rows(),
                self.nodes[loss].value.get().cols()
            ),
            (1, 1),
            "backward target must be a scalar"
        );
        {
            let Graph { nodes, scratch, .. } = self;
            for n in nodes.iter_mut() {
                if let Some(g) = n.grad.take() {
                    scratch.put(g.into_data());
                }
            }
        }
        let mut seed = self.alloc(1, 1);
        seed[(0, 0)] = 1.0;
        self.nodes[loss].grad = Some(seed);

        for id in (0..self.nodes.len()).rev() {
            if !self.nodes[id].needs_grad {
                continue;
            }
            let Some(grad) = self.nodes[id].grad.take() else {
                continue;
            };
            // Take the op out of the node so its payload (adjacency,
            // argmax routes, cached probs) can be borrowed while `self`
            // stays free for pooled allocation and accumulation; both op
            // and gradient are restored after dispatch.
            let op = std::mem::replace(&mut self.nodes[id].op, Op::Leaf);
            match &op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    if self.needs(a) {
                        // dA = grad * Bᵀ through the shared nt kernel.
                        let brows = self.nodes[b].value.get().rows();
                        let mut d = self.alloc(grad.rows(), brows);
                        infer::gemm_nt_into(
                            grad.rows(),
                            grad.cols(),
                            brows,
                            grad.as_slice(),
                            self.nodes[b].value.get().as_slice(),
                            d.as_mut_slice(),
                        );
                        self.accumulate(a, d);
                    }
                    if self.needs(b) {
                        // dB = Aᵀ * grad through the shared tn kernel.
                        let acols = self.nodes[a].value.get().cols();
                        let mut d = self.alloc(acols, grad.cols());
                        infer::gemm_tn_into(
                            grad.rows(),
                            acols,
                            grad.cols(),
                            self.nodes[a].value.get().as_slice(),
                            grad.as_slice(),
                            d.as_mut_slice(),
                        );
                        self.accumulate(b, d);
                    }
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    if self.needs(a) {
                        self.accumulate_ref(a, &grad);
                    }
                    if self.needs(b) {
                        self.accumulate_ref(b, &grad);
                    }
                }
                Op::AddRow(a, bias) => {
                    let (a, bias) = (*a, *bias);
                    if self.needs(bias) {
                        let mut d = self.alloc(1, grad.cols());
                        for r in 0..grad.rows() {
                            for c in 0..grad.cols() {
                                d[(0, c)] += grad[(r, c)];
                            }
                        }
                        self.accumulate(bias, d);
                    }
                    if self.needs(a) {
                        self.accumulate_ref(a, &grad);
                    }
                }
                Op::Relu(a) => {
                    let a = *a;
                    if self.needs(a) {
                        let mut d = self.alloc(grad.rows(), grad.cols());
                        d.as_mut_slice().copy_from_slice(grad.as_slice());
                        {
                            let inp = self.nodes[a].value.get();
                            for (g, &x) in d.as_mut_slice().iter_mut().zip(inp.as_slice()) {
                                if x <= 0.0 {
                                    *g = 0.0;
                                }
                            }
                        }
                        self.accumulate(a, d);
                    }
                }
                Op::ScaleConst(a, s) => {
                    let (a, s) = (*a, *s);
                    if self.needs(a) {
                        let mut d = self.alloc(grad.rows(), grad.cols());
                        for (o, &gx) in d.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                            *o = gx * s;
                        }
                        self.accumulate(a, d);
                    }
                }
                Op::ScaleByScalar(a, scalar) => {
                    let (a, scalar) = (*a, *scalar);
                    let s = self.nodes[scalar].value.get().scalar();
                    if self.needs(a) {
                        let mut d = self.alloc(grad.rows(), grad.cols());
                        for (o, &gx) in d.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                            *o = gx * s;
                        }
                        self.accumulate(a, d);
                    }
                    if self.needs(scalar) {
                        let dot: f32 = grad
                            .as_slice()
                            .iter()
                            .zip(self.nodes[a].value.get().as_slice())
                            .map(|(&g, &x)| g * x)
                            .sum();
                        let mut d = self.alloc(1, 1);
                        d[(0, 0)] = dot;
                        self.accumulate(scalar, d);
                    }
                }
                Op::AggSum(a, adj) => {
                    let a = *a;
                    if self.needs(a) {
                        // Reverse aggregation through the same SpMM
                        // kernel: row j of the delta sums grad rows of
                        // every output j contributed to, in ascending
                        // order — the historical backward fold order.
                        let mut d = self.alloc(grad.rows(), grad.cols());
                        infer::spmm_into(
                            adj.rev_csr(),
                            grad.as_slice(),
                            grad.cols(),
                            d.as_mut_slice(),
                        );
                        self.accumulate(a, d);
                    }
                }
                Op::SumRows(a) => {
                    let a = *a;
                    if self.needs(a) {
                        let rows = self.nodes[a].value.get().rows();
                        let mut d = self.alloc(rows, grad.cols());
                        for r in 0..rows {
                            for c in 0..grad.cols() {
                                d[(r, c)] = grad[(0, c)];
                            }
                        }
                        self.accumulate(a, d);
                    }
                }
                Op::MaxRows(a, arg) => {
                    let a = *a;
                    if self.needs(a) {
                        let rows = self.nodes[a].value.get().rows();
                        let mut d = self.alloc(rows, grad.cols());
                        for (c, &r) in arg.iter().enumerate() {
                            d[(r as usize, c)] = grad[(0, c)];
                        }
                        self.accumulate(a, d);
                    }
                }
                Op::SegmentSum(a, seg) => {
                    let a = *a;
                    if self.needs(a) {
                        let rows = self.nodes[a].value.get().rows();
                        let mut d = self.alloc(rows, grad.cols());
                        for (r, &s) in seg.iter().enumerate() {
                            for c in 0..grad.cols() {
                                d[(r, c)] = grad[(s as usize, c)];
                            }
                        }
                        self.accumulate(a, d);
                    }
                }
                Op::RowNormalize(a, norms) => {
                    let a = *a;
                    if self.needs(a) {
                        // dL/dx_r = (g_r - y_r (y_r · g_r)) / norm_r
                        let mut d = self.alloc(grad.rows(), grad.cols());
                        {
                            let y = self.nodes[id].value.get();
                            for r in 0..grad.rows() {
                                let dot: f32 =
                                    (0..grad.cols()).map(|c| y[(r, c)] * grad[(r, c)]).sum();
                                for c in 0..grad.cols() {
                                    d[(r, c)] = (grad[(r, c)] - y[(r, c)] * dot) / norms[r];
                                }
                            }
                        }
                        self.accumulate(a, d);
                    }
                }
                Op::SegmentMax(a, arg) => {
                    let a = *a;
                    if self.needs(a) {
                        let rows = self.nodes[a].value.get().rows();
                        let cols = grad.cols();
                        let mut d = self.alloc(rows, cols);
                        for (i, &r) in arg.iter().enumerate() {
                            let (s, c) = (i / cols, i % cols);
                            d[(r as usize, c)] += grad[(s, c)];
                        }
                        self.accumulate(a, d);
                    }
                }
                Op::SoftmaxCrossEntropy(logits, labels, probs) => {
                    let logits = *logits;
                    if self.needs(logits) {
                        let g0 = grad.scalar();
                        let n = probs.rows();
                        let mut d = self.alloc(probs.rows(), probs.cols());
                        d.as_mut_slice().copy_from_slice(probs.as_slice());
                        for (r, &l) in labels.iter().enumerate() {
                            d[(r, l as usize)] -= 1.0;
                        }
                        let s = g0 / n.max(1) as f32;
                        for v in d.as_mut_slice() {
                            *v *= s;
                        }
                        self.accumulate(logits, d);
                    }
                }
                Op::MarginPairLoss(x, edges, margin) => {
                    let (x, margin) = (*x, *margin);
                    if self.needs(x) {
                        let g0 = grad.scalar();
                        let (mr, mc) = {
                            let m = self.nodes[x].value.get();
                            (m.rows(), m.cols())
                        };
                        let mut d = self.alloc(mr, mc);
                        {
                            let m = self.nodes[x].value.get();
                            for &(u, v) in edges.iter() {
                                let (u, v) = (u as usize, v as usize);
                                let d2: f32 = m
                                    .row(u)
                                    .iter()
                                    .zip(m.row(v))
                                    .map(|(&a, &b)| (a - b) * (a - b))
                                    .sum();
                                if margin - d2 > 0.0 {
                                    // d/da of -(a-b)^2 = -2(a-b)
                                    for c in 0..mc {
                                        let diff = m[(u, c)] - m[(v, c)];
                                        d[(u, c)] += g0 * -2.0 * diff;
                                        d[(v, c)] += g0 * 2.0 * diff;
                                    }
                                }
                            }
                        }
                        self.accumulate(x, d);
                    }
                }
            }
            self.nodes[id].op = op;
            self.nodes[id].grad = Some(grad);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite difference of `f` w.r.t. entry `(r, c)` of the leaf.
    fn finite_diff<F: Fn(&Matrix) -> f32>(f: F, at: &Matrix, r: usize, c: usize) -> f32 {
        let eps = 1e-2f32;
        let mut plus = at.clone();
        plus[(r, c)] += eps;
        let mut minus = at.clone();
        minus[(r, c)] -= eps;
        (f(&plus) - f(&minus)) / (2.0 * eps)
    }

    #[test]
    fn matmul_gradients_match_finite_difference() {
        let a0 = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.3]]);
        let b0 = Matrix::from_rows(&[&[1.0, 0.2], &[-0.4, 0.9]]);
        let run = |a: &Matrix, b: &Matrix| -> f32 {
            let mut g = Graph::new();
            let va = g.param(a.clone());
            let vb = g.param(b.clone());
            let c = g.matmul(va, vb);
            let s = g.sum_rows(c);
            // Reduce to scalar via sum of the row (cols may be > 1): use
            // margin-free trick: matmul with ones.
            let ones = g.input(Matrix::from_rows(&[&[1.0], &[1.0]]));
            let out = g.matmul(s, ones);
            g.value(out).scalar()
        };
        let mut g = Graph::new();
        let va = g.param(a0.clone());
        let vb = g.param(b0.clone());
        let c = g.matmul(va, vb);
        let s = g.sum_rows(c);
        let ones = g.input(Matrix::from_rows(&[&[1.0], &[1.0]]));
        let out = g.matmul(s, ones);
        g.backward(out);
        for r in 0..2 {
            for col in 0..2 {
                let fd = finite_diff(|a| run(a, &b0), &a0, r, col);
                assert!(
                    (g.grad(va)[(r, col)] - fd).abs() < 1e-2,
                    "dA[{r},{col}]: {} vs {fd}",
                    g.grad(va)[(r, col)]
                );
                let fd = finite_diff(|b| run(&a0, b), &b0, r, col);
                assert!(
                    (g.grad(vb)[(r, col)] - fd).abs() < 1e-2,
                    "dB[{r},{col}]: {} vs {fd}",
                    g.grad(vb)[(r, col)]
                );
            }
        }
    }

    #[test]
    fn relu_blocks_negative_gradients() {
        let mut g = Graph::new();
        let x = g.param(Matrix::from_rows(&[&[-1.0, 2.0]]));
        let y = g.relu(x);
        let ones = g.input(Matrix::from_rows(&[&[1.0], &[1.0]]));
        let s = g.matmul(y, ones);
        g.backward(s);
        assert_eq!(g.grad(x).row(0), &[0.0, 1.0]);
    }

    #[test]
    fn agg_sum_forward_and_backward() {
        // Path 0 - 1 - 2.
        let adj = Arc::new(Adjacency::new(vec![vec![1], vec![0, 2], vec![1]]));
        let mut g = Graph::new();
        let x = g.param(Matrix::from_rows(&[&[1.0], &[10.0], &[100.0]]));
        let y = g.agg_sum(x, adj);
        assert_eq!(g.value(y).as_slice(), &[10.0, 101.0, 10.0]);
        let w = g.input(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let s = g.matmul(w, y); // scalar: y0 + 2 y1 + 3 y2
        g.backward(s);
        // ds/dx0 = coefficient of x0 in 1*y0 + 2*y1 + 3*y2 = 2 (x0 only in y1)
        // ds/dx1 = 1 + 3 = 4 ; ds/dx2 = 2.
        assert_eq!(g.grad(x).as_slice(), &[2.0, 4.0, 2.0]);
    }

    #[test]
    fn max_rows_routes_gradient_to_argmax() {
        let mut g = Graph::new();
        let x = g.param(Matrix::from_rows(&[&[1.0, 5.0], &[3.0, 2.0]]));
        let y = g.max_rows(x);
        let ones = g.input(Matrix::from_rows(&[&[1.0], &[1.0]]));
        let s = g.matmul(y, ones);
        assert_eq!(g.value(s).scalar(), 3.0 + 5.0);
        g.backward(s);
        assert_eq!(g.grad(x).as_slice(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn cross_entropy_decreases_toward_label() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0, 0.0]]);
        let mut g = Graph::new();
        let x = g.param(logits);
        let loss = g.softmax_cross_entropy(x, Arc::new(vec![1]));
        let l0 = g.value(loss).scalar();
        assert!((l0 - (3f32).ln()).abs() < 1e-5);
        g.backward(loss);
        let d = g.grad(x);
        // Gradient pushes label logit up (negative grad) and others down.
        assert!(d[(0, 1)] < 0.0);
        assert!(d[(0, 0)] > 0.0 && d[(0, 2)] > 0.0);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let x0 = Matrix::from_rows(&[&[0.3, -0.7, 1.2], &[0.1, 0.9, -0.5]]);
        let labels = Arc::new(vec![2u8, 0u8]);
        let run = |m: &Matrix| -> f32 {
            let mut g = Graph::new();
            let x = g.param(m.clone());
            let loss = g.softmax_cross_entropy(x, Arc::clone(&labels));
            g.value(loss).scalar()
        };
        let mut g = Graph::new();
        let x = g.param(x0.clone());
        let loss = g.softmax_cross_entropy(x, Arc::clone(&labels));
        g.backward(loss);
        for r in 0..2 {
            for c in 0..3 {
                let fd = finite_diff(run, &x0, r, c);
                let an = g.grad(x)[(r, c)];
                assert!((an - fd).abs() < 1e-2, "[{r},{c}] {an} vs {fd}");
            }
        }
    }

    #[test]
    fn margin_loss_gradient_matches_finite_difference() {
        // Keep both hinge terms strictly active and away from the kink so
        // finite differences are valid.
        let x0 = Matrix::from_rows(&[&[0.2, 0.1], &[0.3, -0.2], &[-0.45, 0.4]]);
        let edges = Arc::new(vec![(0u32, 1u32), (1, 2)]);
        let run = |m: &Matrix| -> f32 {
            let mut g = Graph::new();
            let x = g.param(m.clone());
            let loss = g.margin_pair_loss(x, Arc::clone(&edges), 1.0);
            g.value(loss).scalar()
        };
        let mut g = Graph::new();
        let x = g.param(x0.clone());
        let loss = g.margin_pair_loss(x, Arc::clone(&edges), 1.0);
        g.backward(loss);
        for r in 0..3 {
            for c in 0..2 {
                let fd = finite_diff(run, &x0, r, c);
                let an = g.grad(x)[(r, c)];
                assert!((an - fd).abs() < 2e-2, "[{r},{c}] {an} vs {fd}");
            }
        }
    }

    #[test]
    fn scale_by_scalar_gradients() {
        let mut g = Graph::new();
        let s = g.param(Matrix::from_vec(1, 1, vec![2.0]));
        let x = g.param(Matrix::from_rows(&[&[3.0, -1.0]]));
        let y = g.scale_by_scalar(x, s);
        let ones = g.input(Matrix::from_rows(&[&[1.0], &[1.0]]));
        let out = g.matmul(y, ones); // 2 * (3 - 1) = 4
        assert_eq!(g.value(out).scalar(), 4.0);
        g.backward(out);
        assert_eq!(g.grad(s).scalar(), 2.0); // d/ds = 3 - 1
        assert_eq!(g.grad(x).as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn segment_sum_pools_per_segment() {
        let mut g = Graph::new();
        let x = g.param(Matrix::from_rows(&[&[1.0], &[2.0], &[4.0], &[8.0]]));
        let y = g.segment_sum(x, Arc::new(vec![0, 1, 0, 1]), 2);
        assert_eq!(g.value(y).as_slice(), &[5.0, 10.0]);
        let w = g.input(Matrix::from_rows(&[&[1.0, 3.0]]));
        let s = g.matmul(w, y); // 1*seg0 + 3*seg1
        g.backward(s);
        assert_eq!(g.grad(x).as_slice(), &[1.0, 3.0, 1.0, 3.0]);
    }

    #[test]
    fn segment_max_pools_and_routes_grads() {
        let mut g = Graph::new();
        let x = g.param(Matrix::from_rows(&[&[1.0, 9.0], &[2.0, 3.0], &[5.0, 4.0]]));
        let y = g.segment_max(x, &[0, 0, 1], 2);
        assert_eq!(g.value(y).as_slice(), &[2.0, 9.0, 5.0, 4.0]);
        let ones = g.input(Matrix::from_rows(&[&[1.0], &[1.0]]));
        let col = g.matmul(y, ones); // 2x1
        let w = g.input(Matrix::from_rows(&[&[1.0, 1.0]]));
        let s = g.matmul(w, col);
        g.backward(s);
        assert_eq!(g.grad(x).as_slice(), &[0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn row_normalize_forward_and_gradient() {
        let x0 = Matrix::from_rows(&[&[3.0, 4.0], &[0.5, -0.2]]);
        let run = |m: &Matrix| -> f32 {
            let mut g = Graph::new();
            let x = g.param(m.clone());
            let y = g.row_l2_normalize(x);
            // Scalar: weighted sum of normalized entries.
            let w = g.input(Matrix::from_rows(&[&[1.0, 2.0]]));
            let wy = g.matmul(w, y); // (1x2)*(2x2) = 1x2
            let ones = g.input(Matrix::from_rows(&[&[1.0], &[-0.5]]));
            let s = g.matmul(wy, ones);
            g.value(s).scalar()
        };
        let mut g = Graph::new();
        let x = g.param(x0.clone());
        let y = g.row_l2_normalize(x);
        assert!((g.value(y)[(0, 0)] - 0.6).abs() < 1e-6);
        assert!((g.value(y)[(0, 1)] - 0.8).abs() < 1e-6);
        let w = g.input(Matrix::from_rows(&[&[1.0, 2.0]]));
        let wy = g.matmul(w, y);
        let ones = g.input(Matrix::from_rows(&[&[1.0], &[-0.5]]));
        let s = g.matmul(wy, ones);
        g.backward(s);
        for r in 0..2 {
            for c in 0..2 {
                let fd = finite_diff(run, &x0, r, c);
                let an = g.grad(x)[(r, c)];
                assert!((an - fd).abs() < 2e-2, "[{r},{c}] {an} vs {fd}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty segment")]
    fn segment_max_rejects_empty_segment() {
        let mut g = Graph::new();
        let x = g.param(Matrix::from_rows(&[&[1.0]]));
        let _ = g.segment_max(x, &[0], 2);
    }

    #[test]
    fn unreachable_param_has_no_grad() {
        let mut g = Graph::new();
        let a = g.param(Matrix::from_vec(1, 1, vec![1.0]));
        let b = g.param(Matrix::from_vec(1, 1, vec![1.0]));
        let out = g.scale_const(a, 2.0);
        g.backward(out);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = g.grad(b);
        }))
        .is_err());
    }
}
