//! Precoloring constraints.
//!
//! MPLD inputs may pin features to specific masks (e.g. cells already
//! assigned by a library, or anchoring patterns). Rather than teaching
//! every engine about fixed colors, we encode precoloring with a standard
//! **anchor-clique gadget**: `k` mutually conflicting anchor nodes are
//! appended (they must take `k` distinct masks in any conflict-free
//! solution), and each precolored node is connected to every anchor
//! *except* the one standing for its mask. Any engine that minimizes
//! conflicts then respects the precoloring — softly, in the same currency
//! as every other conflict, which matches the cost-based objective.
//!
//! Colors are pinned up to a global mask permutation (masks are
//! interchangeable); [`PrecoloringMap::extract`] reads the anchors'
//! final colors and canonicalizes the permutation away.

use crate::{GraphError, LayoutGraph, NodeId};

/// A set of `(node, mask)` pins.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Precoloring {
    pins: Vec<(NodeId, u8)>,
}

impl Precoloring {
    /// Creates an empty precoloring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins `node` to `mask`. Later pins override earlier ones.
    pub fn pin(&mut self, node: NodeId, mask: u8) -> &mut Self {
        self.pins.retain(|&(n, _)| n != node);
        self.pins.push((node, mask));
        self
    }

    /// The pins, in insertion order.
    pub fn pins(&self) -> &[(NodeId, u8)] {
        &self.pins
    }

    /// Whether no node is pinned.
    pub fn is_empty(&self) -> bool {
        self.pins.is_empty()
    }
}

impl FromIterator<(NodeId, u8)> for Precoloring {
    fn from_iter<I: IntoIterator<Item = (NodeId, u8)>>(iter: I) -> Self {
        let mut p = Precoloring::new();
        for (n, m) in iter {
            p.pin(n, m);
        }
        p
    }
}

/// Bookkeeping to translate a gadget-graph coloring back to the original
/// nodes (see module docs).
#[derive(Debug, Clone)]
pub struct PrecoloringMap {
    /// Number of original nodes.
    original_nodes: usize,
    /// Node id of anchor for mask 0 (anchors are contiguous).
    anchor_base: NodeId,
    k: u8,
}

impl PrecoloringMap {
    /// Translates a coloring of the gadget graph into a coloring of the
    /// original graph, canonicalized so pinned nodes receive exactly their
    /// pinned masks whenever the anchors ended up conflict-free.
    ///
    /// # Panics
    ///
    /// Panics if `coloring` does not cover the gadget graph.
    pub fn extract(&self, coloring: &[u8]) -> Vec<u8> {
        assert!(
            coloring.len() >= self.original_nodes + self.k as usize,
            "coloring does not cover the gadget graph"
        );
        // perm[mask] = color the anchor of `mask` received.
        let mut perm = vec![u8::MAX; self.k as usize];
        for m in 0..self.k {
            perm[m as usize] = coloring[(self.anchor_base + m as u32) as usize];
        }
        // Invert when the anchors are properly colored (distinct colors);
        // otherwise fall back to identity.
        let mut inverse = vec![u8::MAX; self.k as usize];
        let mut proper = true;
        for (m, &c) in perm.iter().enumerate() {
            if (c as usize) < inverse.len() && inverse[c as usize] == u8::MAX {
                inverse[c as usize] = m as u8;
            } else {
                proper = false;
            }
        }
        coloring[..self.original_nodes]
            .iter()
            .map(|&c| {
                if proper && (c as usize) < inverse.len() {
                    inverse[c as usize]
                } else {
                    c
                }
            })
            .collect()
    }
}

/// Builds the gadget graph enforcing `pre` on `graph` with `k` masks.
///
/// Anchors are appended as `k` fresh features; each pinned node gains
/// conflict edges to the `k - 1` anchors of the other masks.
///
/// # Errors
///
/// Returns a [`GraphError`] if a pin references a missing node, a mask
/// `>= k` (reported as `NodeOutOfRange` with the offending pair), or a
/// duplicate pin-edge arises.
pub fn apply_precoloring(
    graph: &LayoutGraph,
    pre: &Precoloring,
    k: u8,
) -> Result<(LayoutGraph, PrecoloringMap), GraphError> {
    let n = graph.num_nodes() as u32;
    for &(node, mask) in pre.pins() {
        if node >= n || mask >= k {
            return Err(GraphError::NodeOutOfRange {
                edge: (node, mask as u32),
                nodes: graph.num_nodes(),
            });
        }
    }
    let nf = graph.num_features() as u32;
    let mut node_feature = graph.node_features().to_vec();
    for m in 0..k as u32 {
        node_feature.push(nf + m);
    }
    let mut conflicts = graph.conflict_edges().to_vec();
    // Anchor clique.
    for a in 0..k as u32 {
        for b in (a + 1)..k as u32 {
            conflicts.push((n + a, n + b));
        }
    }
    // Pins: forbid every mask except the pinned one.
    for &(node, mask) in pre.pins() {
        for m in 0..k {
            if m != mask {
                conflicts.push((node, n + m as u32));
            }
        }
    }
    let gadget = LayoutGraph::new(node_feature, conflicts, graph.stitch_edges().to_vec())?;
    Ok((
        gadget,
        PrecoloringMap {
            original_nodes: graph.num_nodes(),
            anchor_base: n,
            k,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DecomposeParams, Decomposer};

    /// Minimal exhaustive solver for the tests (graph crate cannot depend
    /// on mpld-ilp).
    struct Exhaustive;
    impl Decomposer for Exhaustive {
        fn name(&self) -> &'static str {
            "exhaustive"
        }
        fn decompose(
            &self,
            graph: &LayoutGraph,
            params: &DecomposeParams,
            _budget: &crate::Budget,
        ) -> Result<crate::Decomposition, crate::MpldError> {
            let n = graph.num_nodes();
            assert!(n <= 12);
            let mut best: Option<crate::Decomposition> = None;
            let mut coloring = vec![0u8; n];
            loop {
                let cost = graph.evaluate(&coloring, params.alpha);
                let better = best
                    .as_ref()
                    .is_none_or(|b| cost.better_than(&b.cost, params.alpha));
                if better {
                    best = Some(crate::Decomposition {
                        coloring: coloring.clone(),
                        cost,
                        certainty: crate::Certainty::Certified,
                    });
                }
                let mut i = 0;
                loop {
                    if i == n {
                        return Ok(best.expect("evaluated"));
                    }
                    coloring[i] += 1;
                    if coloring[i] < params.k {
                        break;
                    }
                    coloring[i] = 0;
                    i += 1;
                }
            }
        }
    }

    #[test]
    fn pins_are_respected_when_feasible() {
        // A triangle; pin node 0 to mask 2 and node 1 to mask 0.
        let g = LayoutGraph::homogeneous(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let pre: Precoloring = [(0u32, 2u8), (1, 0)].into_iter().collect();
        let (gadget, map) = apply_precoloring(&g, &pre, 3).unwrap();
        let d = Exhaustive.decompose_unbounded(&gadget, &DecomposeParams::tpl());
        assert_eq!(d.cost.conflicts, 0);
        let colors = map.extract(&d.coloring);
        assert_eq!(colors.len(), 3);
        assert_eq!(colors[0], 2);
        assert_eq!(colors[1], 0);
        assert_eq!(colors[2], 1); // forced by the triangle
    }

    #[test]
    fn infeasible_pins_cost_conflicts() {
        // Two adjacent nodes pinned to the same mask: 1 conflict minimum.
        let g = LayoutGraph::homogeneous(2, vec![(0, 1)]).unwrap();
        let pre: Precoloring = [(0u32, 1u8), (1, 1)].into_iter().collect();
        let (gadget, _) = apply_precoloring(&g, &pre, 3).unwrap();
        let d = Exhaustive.decompose_unbounded(&gadget, &DecomposeParams::tpl());
        assert_eq!(d.cost.conflicts, 1);
    }

    #[test]
    fn empty_precoloring_only_adds_anchor_clique() {
        let g = LayoutGraph::homogeneous(2, vec![(0, 1)]).unwrap();
        let (gadget, map) = apply_precoloring(&g, &Precoloring::new(), 3).unwrap();
        assert_eq!(gadget.num_nodes(), 5);
        assert_eq!(gadget.conflict_edges().len(), 1 + 3);
        let d = Exhaustive.decompose_unbounded(&gadget, &DecomposeParams::tpl());
        assert_eq!(d.cost.conflicts, 0);
        assert_eq!(map.extract(&d.coloring).len(), 2);
    }

    #[test]
    fn pin_overrides_previous_pin() {
        let mut pre = Precoloring::new();
        pre.pin(0, 1).pin(0, 2);
        assert_eq!(pre.pins(), &[(0, 2)]);
    }

    #[test]
    fn out_of_range_pin_rejected() {
        let g = LayoutGraph::homogeneous(2, vec![(0, 1)]).unwrap();
        let pre: Precoloring = [(5u32, 0u8)].into_iter().collect();
        assert!(apply_precoloring(&g, &pre, 3).is_err());
        let pre: Precoloring = [(0u32, 7u8)].into_iter().collect();
        assert!(apply_precoloring(&g, &pre, 3).is_err());
    }

    #[test]
    fn extract_handles_permuted_anchors() {
        // Color the gadget with anchors permuted: extraction must undo it.
        let g = LayoutGraph::homogeneous(1, vec![]).unwrap();
        let pre: Precoloring = [(0u32, 0u8)].into_iter().collect();
        let (gadget, map) = apply_precoloring(&g, &pre, 3).unwrap();
        assert_eq!(gadget.num_nodes(), 4);
        // Anchors (nodes 1, 2, 3) colored (2, 0, 1); node 0 must avoid
        // anchors 1 and 2 (masks 1 and 2): color in {anchor0's color} = 2.
        let coloring = vec![2u8, 2, 0, 1];
        let out = map.extract(&coloring);
        assert_eq!(out, vec![0]);
    }
}
