//! Property tests for the quantized inference planes: quantize →
//! dequantize error bounds, and parity of every SIMD tier the host can
//! run against the scalar oracles (`*_ref`). The SIMD tiers reorder f32
//! accumulation, so parity is up to an FP tolerance, not bit-exact —
//! except the f32↔f16 conversions themselves, which must agree bit for
//! bit between the software and hardware paths.

use mpld_tensor::infer::{Csr, CsrBuilder};
use mpld_tensor::quant::{
    f16_from_f32_slice, f16_to_f32, f32_to_f16, gemm_nn_f16, gemm_nn_f16_acc, gemm_nn_f16_acc_ref,
    gemm_nn_f16_ref, gemm_nn_q8, gemm_nn_q8_acc, gemm_nn_q8_acc_ref, gemm_nn_q8_ref, spmm_f16_into,
    spmm_f16_ref, spmm_f32_wide,
};
use mpld_tensor::{F16Matrix, Matrix, QuantMatrix};
use proptest::prelude::*;

/// Shape triples covering tile-aligned, sub-tile, and ragged-edge sizes
/// relative to the 4 x 16 / 4 x 32 microkernel tiles.
fn arb_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..12, 1usize..70, 1usize..70)
}

/// Deterministic pseudo-random matrix in the weight/activation range the
/// GNNs actually see.
fn sample(rows: usize, cols: usize, seed: u64) -> Matrix {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-1.5f32..1.5))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn assert_close(label: &str, got: &[f32], want: &[f32], tol_scale: f32) {
    assert_eq!(got.len(), want.len());
    for (x, y) in got.iter().zip(want) {
        let tol = tol_scale * (1.0 + x.abs().max(y.abs()));
        assert!(
            (x - y).abs() <= tol,
            "{label}: {x} vs oracle {y} differ beyond tolerance {tol}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Per-element reconstruction error of the int8 plane is bounded by
    /// half its row's scale (plus float fuzz).
    #[test]
    fn q8_roundtrip_error_bounded(dims in (1usize..10, 1usize..40), seed in 0u64..1000) {
        let (rows, cols) = dims;
        let m = sample(rows, cols, seed);
        let q = QuantMatrix::from_matrix(&m);
        let d = q.dequantize();
        for r in 0..rows {
            let bound = q.scales()[r] * 0.5 + 1e-6;
            for c in 0..cols {
                let err = (m[(r, c)] - d[(r, c)]).abs();
                prop_assert!(
                    err <= bound,
                    "row {r} col {c}: err {err} exceeds scale/2 bound {bound}"
                );
            }
        }
    }

    /// The f16 plane reconstructs within binary16 rounding (2^-11
    /// relative for the normal range used here).
    #[test]
    fn f16_roundtrip_error_bounded(dims in (1usize..10, 1usize..40), seed in 0u64..1000) {
        let (rows, cols) = dims;
        let m = sample(rows, cols, seed);
        let h = F16Matrix::from_matrix(&m);
        let d = h.dequantize();
        for (x, y) in m.as_slice().iter().zip(d.as_slice()) {
            let tol = x.abs() * 4.9e-4 + 6e-8;
            prop_assert!((x - y).abs() <= tol, "{x} -> {y} beyond half-precision ulp");
        }
    }

    /// Software f32→f16 conversion agrees bit-for-bit with the hardware
    /// path taken by `f16_from_f32_slice` (vcvtps2ph where available),
    /// and the roundtrip through f16→f32 is exact.
    #[test]
    fn f16_conversion_paths_agree(v in prop::collection::vec(-1e4f32..1e4, 1..64)) {
        let mut hw = vec![0u16; v.len()];
        f16_from_f32_slice(&v, &mut hw);
        for (x, &h) in v.iter().zip(&hw) {
            prop_assert_eq!(h, f32_to_f16(*x), "hardware vs software convert for {}", x);
            prop_assert_eq!(f32_to_f16(f16_to_f32(h)), h, "f16 roundtrip for {}", x);
        }
    }

    /// Auto-dispatched int8 GEMM matches the scalar oracle. The oracle
    /// itself is exact dequantized arithmetic, so the tolerance only
    /// covers SIMD reassociation.
    #[test]
    fn gemm_q8_dispatch_matches_oracle(dims in arb_dims(), seed in 0u64..1000) {
        let (m, k, n) = dims;
        let a = sample(m, k, seed);
        let b = QuantMatrix::from_matrix(&sample(k, n, seed.wrapping_add(1)));
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        gemm_nn_q8(m, k, n, a.as_slice(), &b, &mut got);
        gemm_nn_q8_ref(m, k, n, a.as_slice(), &b, &mut want);
        assert_close("q8 dispatch", &got, &want, 1e-4);
    }

    /// Auto-dispatched f16 GEMM matches the scalar oracle.
    #[test]
    fn gemm_f16_dispatch_matches_oracle(dims in arb_dims(), seed in 0u64..1000) {
        let (m, k, n) = dims;
        let a = sample(m, k, seed);
        let b = F16Matrix::from_matrix(&sample(k, n, seed.wrapping_add(2)));
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        gemm_nn_f16(m, k, n, a.as_slice(), &b, &mut got);
        gemm_nn_f16_ref(m, k, n, a.as_slice(), &b, &mut want);
        assert_close("f16 dispatch", &got, &want, 1e-4);
    }

    /// Quantized GEMMs approximate the full-f32 product within the
    /// analytic error bound: per k-step error ≤ |a| * (scale/2 resp.
    /// half-ulp), summed over k.
    #[test]
    fn quant_gemm_close_to_f32(dims in arb_dims(), seed in 0u64..1000) {
        let (m, k, n) = dims;
        let a = sample(m, k, seed);
        let bf = sample(k, n, seed.wrapping_add(3));
        let mut f32_out = vec![0.0f32; m * n];
        mpld_tensor::infer::gemm_into(m, k, n, a.as_slice(), bf.as_slice(), &mut f32_out);

        let q = QuantMatrix::from_matrix(&bf);
        let max_scale = q.scales().iter().cloned().fold(0.0f32, f32::max);
        let mut q_out = vec![0.0f32; m * n];
        gemm_nn_q8(m, k, n, a.as_slice(), &q, &mut q_out);
        // |a| ≤ 1.5, per-element dequant error ≤ scale/2.
        let q_bound = 1.5 * (max_scale * 0.5 + 1e-6) * k as f32 + 1e-4;
        for (x, y) in q_out.iter().zip(&f32_out) {
            prop_assert!((x - y).abs() <= q_bound, "int8 {x} vs f32 {y} beyond {q_bound}");
        }

        let h = F16Matrix::from_matrix(&bf);
        let mut h_out = vec![0.0f32; m * n];
        gemm_nn_f16(m, k, n, a.as_slice(), &h, &mut h_out);
        // Half-precision relative error 2^-11 on |b| ≤ 1.5 entries.
        let h_bound = 1.5 * (1.5 * 4.9e-4) * k as f32 + 1e-4;
        for (x, y) in h_out.iter().zip(&f32_out) {
            prop_assert!((x - y).abs() <= h_bound, "f16 {x} vs f32 {y} beyond {h_bound}");
        }
    }

    /// The fused-accumulate int8 GEMM (`c += a * dequant(b)`) matches
    /// product-into-temporary-then-add on a non-zero starting `c`.
    #[test]
    fn gemm_q8_acc_dispatch_matches_oracle(dims in arb_dims(), seed in 0u64..1000) {
        let (m, k, n) = dims;
        let a = sample(m, k, seed);
        let b = QuantMatrix::from_matrix(&sample(k, n, seed.wrapping_add(5)));
        let start = sample(m, n, seed.wrapping_add(6));
        let mut got = start.as_slice().to_vec();
        let mut want = start.as_slice().to_vec();
        gemm_nn_q8_acc(m, k, n, a.as_slice(), &b, &mut got);
        gemm_nn_q8_acc_ref(m, k, n, a.as_slice(), &b, &mut want);
        assert_close("q8 acc dispatch", &got, &want, 1e-4);
    }

    /// The fused-accumulate f16 GEMM matches its oracle the same way.
    #[test]
    fn gemm_f16_acc_dispatch_matches_oracle(dims in arb_dims(), seed in 0u64..1000) {
        let (m, k, n) = dims;
        let a = sample(m, k, seed);
        let b = F16Matrix::from_matrix(&sample(k, n, seed.wrapping_add(7)));
        let start = sample(m, n, seed.wrapping_add(8));
        let mut got = start.as_slice().to_vec();
        let mut want = start.as_slice().to_vec();
        gemm_nn_f16_acc(m, k, n, a.as_slice(), &b, &mut got);
        gemm_nn_f16_acc_ref(m, k, n, a.as_slice(), &b, &mut want);
        assert_close("f16 acc dispatch", &got, &want, 1e-4);
    }

    /// The widened f32 SpMM is bit-identical to the pinned `spmm_into`:
    /// every output column is an independent sum over CSR neighbors in
    /// row order, so no dispatch tier may reorder it.
    #[test]
    fn spmm_f32_wide_bit_identical_to_pinned(
        n in 1usize..40,
        cols in 1usize..40,
        seed in 0u64..1000,
        density in 0.0f64..0.4,
    ) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut builder = CsrBuilder::new(n);
        for _ in 0..n {
            let row: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(density)).collect();
            builder.push_row(row);
        }
        let csr: Csr = builder.finish();
        let x = sample(n, cols, seed.wrapping_add(9));
        let mut got = vec![0.0f32; n * cols];
        let mut want = vec![0.0f32; n * cols];
        spmm_f32_wide(&csr, x.as_slice(), cols, &mut got);
        mpld_tensor::infer::spmm_into(&csr, x.as_slice(), cols, &mut want);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "wide spmm diverged from pinned spmm at {} ({} vs {})", i, g, w
            );
        }
    }

    /// Auto-dispatched f16 SpMM matches the scalar oracle on random
    /// sparse adjacencies, and both match the f32 SpMM applied to the
    /// dequantized activations exactly (accumulating converted halves in
    /// the same CSR order).
    #[test]
    fn spmm_f16_dispatch_matches_oracle(
        n in 1usize..40,
        cols in 1usize..40,
        seed in 0u64..1000,
        density in 0.0f64..0.4,
    ) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut builder = CsrBuilder::new(n);
        for _ in 0..n {
            let row: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(density)).collect();
            builder.push_row(row);
        }
        let csr: Csr = builder.finish();
        let x = sample(n, cols, seed.wrapping_add(4));
        let mut bits = vec![0u16; n * cols];
        f16_from_f32_slice(x.as_slice(), &mut bits);

        let mut got = vec![0.0f32; n * cols];
        let mut want = vec![0.0f32; n * cols];
        spmm_f16_into(&csr, &bits, cols, &mut got);
        spmm_f16_ref(&csr, &bits, cols, &mut want);
        assert_close("f16 spmm", &got, &want, 1e-5);

        // Same sum over dequantized rows via the f32 SpMM.
        let deq: Vec<f32> = bits.iter().map(|&h| f16_to_f32(h)).collect();
        let mut f32_out = vec![0.0f32; n * cols];
        mpld_tensor::infer::spmm_into(&csr, &deq, cols, &mut f32_out);
        assert_close("f16 spmm vs dequant f32 spmm", &got, &f32_out, 1e-5);
    }
}

/// Every SIMD tier the host can actually run is pinned against the
/// scalar oracle — not just the widest one auto-dispatch picks.
#[cfg(target_arch = "x86_64")]
#[test]
fn every_buildable_x86_tier_matches_oracle() {
    use mpld_tensor::quant::x86;
    let (m, k, n) = (9, 33, 50); // ragged on every tile boundary
    let a = sample(m, k, 11);
    let bf = sample(k, n, 12);
    let q = QuantMatrix::from_matrix(&bf);
    let h = F16Matrix::from_matrix(&bf);
    let mut want_q = vec![0.0f32; m * n];
    let mut want_h = vec![0.0f32; m * n];
    gemm_nn_q8_ref(m, k, n, a.as_slice(), &q, &mut want_q);
    gemm_nn_f16_ref(m, k, n, a.as_slice(), &h, &mut want_h);

    let mut tiers_run = 0;
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        let mut got = vec![0.0f32; m * n];
        // SAFETY: AVX2+FMA detected above.
        unsafe {
            x86::gemm_q8_avx2(
                m,
                k,
                n,
                a.as_slice(),
                q.codes(),
                q.scales(),
                q.zeros(),
                &mut got,
            )
        };
        assert_close("avx2-q8", &got, &want_q, 1e-4);
        tiers_run += 1;
        if is_x86_feature_detected!("f16c") {
            let mut got = vec![0.0f32; m * n];
            // SAFETY: AVX2+FMA+F16C detected above.
            unsafe { x86::gemm_f16_avx2(m, k, n, a.as_slice(), h.bits(), &mut got) };
            assert_close("avx2-f16c", &got, &want_h, 1e-4);
            tiers_run += 1;
        }
    }
    if is_x86_feature_detected!("avx512f")
        && is_x86_feature_detected!("avx2")
        && is_x86_feature_detected!("fma")
    {
        let mut got = vec![0.0f32; m * n];
        // SAFETY: AVX-512F (+AVX2/FMA) detected above.
        unsafe {
            x86::gemm_q8_avx512(
                m,
                k,
                n,
                a.as_slice(),
                q.codes(),
                q.scales(),
                q.zeros(),
                &mut got,
            )
        };
        assert_close("avx512-q8", &got, &want_q, 1e-4);
        let mut got = vec![0.0f32; m * n];
        // SAFETY: AVX-512F detected above.
        unsafe { x86::gemm_f16_avx512(m, k, n, a.as_slice(), h.bits(), &mut got) };
        assert_close("avx512-f16", &got, &want_h, 1e-4);
        tiers_run += 2;

        // Fused-accumulate twins: start from a non-zero C and compare
        // against oracle-product + elementwise add.
        let start = sample(m, n, 13);
        let mut want_acc_q = start.as_slice().to_vec();
        let mut want_acc_h = start.as_slice().to_vec();
        for (o, &v) in want_acc_q.iter_mut().zip(&want_q) {
            *o += v;
        }
        for (o, &v) in want_acc_h.iter_mut().zip(&want_h) {
            *o += v;
        }
        let mut got = start.as_slice().to_vec();
        // SAFETY: AVX-512F (+AVX2/FMA) detected above.
        unsafe {
            x86::gemm_q8_avx512_acc(
                m,
                k,
                n,
                a.as_slice(),
                q.codes(),
                q.scales(),
                q.zeros(),
                &mut got,
            )
        };
        assert_close("avx512-q8-acc", &got, &want_acc_q, 1e-4);
        let mut got = start.as_slice().to_vec();
        // SAFETY: AVX-512F detected above.
        unsafe { x86::gemm_f16_avx512_acc(m, k, n, a.as_slice(), h.bits(), &mut got) };
        assert_close("avx512-f16-acc", &got, &want_acc_h, 1e-4);
        tiers_run += 2;
    }
    // The scalar tier always runs (it IS the oracle); SIMD hosts must
    // have exercised at least one wide tier.
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        assert!(tiers_run >= 1);
    }
}
