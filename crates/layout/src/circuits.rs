//! The 15 synthetic benchmark circuits.
//!
//! The paper evaluates on scaled-down, modified ISCAS-85/89 layouts that
//! are not redistributable. Per DESIGN.md we substitute a deterministic
//! generator that emits circuits with the same names, the same minimum
//! coloring distances (120 nm for the ten ISCAS-85 circuits, 100 nm for
//! the five ISCAS-89 circuits), and feature counts scaled so the graph
//! population after simplification matches the paper's qualitative shape.

use crate::generator::{generate_layout, GeneratorParams};
use crate::Layout;

/// A named benchmark circuit: generation parameters plus the coloring
/// distance used in the paper.
#[derive(Debug, Clone)]
pub struct Circuit {
    /// Circuit name as used in the paper's tables (e.g. "C432").
    pub name: &'static str,
    /// Minimum coloring distance in nanometres.
    pub d: i64,
    /// Whether the paper groups this circuit with the "large" layouts.
    pub large: bool,
    params: GeneratorParams,
}

impl Circuit {
    /// Generates the layout deterministically (same output every call).
    pub fn generate(&self) -> Layout {
        generate_layout(self.name, self.d, &self.params)
    }

    /// Approximate number of features the generator will emit.
    pub fn approx_features(&self) -> usize {
        self.params.tracks * self.params.track_units / 3
    }
}

/// The full 15-circuit suite in the paper's order: ten ISCAS-85 circuits
/// at `d = 120 nm`, then five ISCAS-89 circuits at `d = 100 nm`.
///
/// # Example
///
/// ```
/// use mpld_layout::iscas_suite;
/// let suite = iscas_suite();
/// assert_eq!(suite.len(), 15);
/// assert_eq!(suite[0].name, "C432");
/// assert_eq!(suite[0].d, 120);
/// assert_eq!(suite[14].d, 100);
/// ```
pub fn iscas_suite() -> Vec<Circuit> {
    // (name, tracks, units, seed). Track/unit counts scale with the
    // original circuit sizes (C432 smallest, S38584 largest), divided by
    // ~10 so the full suite runs on one machine; see DESIGN.md.
    let small: &[(&str, usize, usize, u64)] = &[
        ("C432", 16, 110, 0xC432),
        ("C499", 20, 130, 0xC499),
        ("C880", 22, 150, 0xC880),
        ("C1355", 24, 160, 0xC1355),
        ("C1908", 26, 170, 0xC1908),
        ("C2670", 30, 190, 0xC2670),
        ("C3540", 32, 210, 0xC3540),
        ("C5315", 36, 230, 0xC5315),
        ("C6288", 40, 250, 0xC6288),
        ("C7552", 42, 270, 0xC7552),
    ];
    let large: &[(&str, usize, usize, u64)] = &[
        ("S1488", 48, 300, 0x51488),
        ("S38417", 90, 520, 0x38417),
        ("S35932", 100, 560, 0x35932),
        ("S38584", 110, 600, 0x38584),
        ("S15850", 80, 480, 0x15850),
    ];
    let mut out = Vec::new();
    for &(name, tracks, track_units, seed) in small {
        out.push(Circuit {
            name,
            d: 120,
            large: false,
            params: GeneratorParams {
                tracks,
                track_units,
                seed,
                ..GeneratorParams::default()
            },
        });
    }
    for &(name, tracks, track_units, seed) in large {
        out.push(Circuit {
            name,
            d: 100,
            large: true,
            params: GeneratorParams {
                tracks,
                track_units,
                seed,
                ..GeneratorParams::default()
            },
        });
    }
    out
}

/// Looks a circuit up by name.
pub fn circuit_by_name(name: &str) -> Option<Circuit> {
    iscas_suite().into_iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_paper_setup() {
        let suite = iscas_suite();
        assert_eq!(suite.len(), 15);
        assert!(suite[..10].iter().all(|c| c.d == 120 && !c.large));
        assert!(suite[10..].iter().all(|c| c.d == 100 && c.large));
    }

    #[test]
    fn generation_is_deterministic() {
        let c = circuit_by_name("C432").expect("exists");
        let a = c.generate();
        let b = c.generate();
        assert_eq!(a.features, b.features);
    }

    #[test]
    fn sizes_grow_with_circuit() {
        let suite = iscas_suite();
        let first = suite[0].generate().features.len();
        let last = suite[13].generate().features.len(); // S38584
        assert!(last > 5 * first, "{first} vs {last}");
    }

    #[test]
    fn unknown_circuit_is_none() {
        assert!(circuit_by_name("C9999").is_none());
    }
}
