//! Minimal argument parsing (positional arguments plus `--flag value`
//! options), kept dependency-free.

use std::collections::HashMap;

/// Parsed command line: positionals in order, options by name.
#[derive(Debug, Default)]
pub struct Parsed {
    positional: Vec<String>,
    options: HashMap<String, String>,
}

/// Splits `argv` into positionals and `--name value` / `-o value` options.
///
/// # Errors
///
/// Returns an error when an option is missing its value.
pub fn parse(argv: &[String]) -> Result<Parsed, String> {
    let mut out = Parsed::default();
    let mut it = argv.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
            let value = it
                .next()
                .ok_or_else(|| format!("option --{name} requires a value"))?
                .clone();
            out.options.insert(name.to_string(), value);
        } else {
            out.positional.push(a.clone());
        }
    }
    Ok(out)
}

impl Parsed {
    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// An option by name (without dashes).
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A parsed option with a default.
    pub fn option_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.option(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("cannot parse --{name} {v}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_and_options_mix() {
        let p = parse(&strs(&[
            "decompose",
            "C432",
            "--engine",
            "ec",
            "-o",
            "out.txt",
        ]))
        .unwrap();
        assert_eq!(p.positional(0), Some("decompose"));
        assert_eq!(p.positional(1), Some("C432"));
        assert_eq!(p.option("engine"), Some("ec"));
        assert_eq!(p.option("o"), Some("out.txt"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&strs(&["x", "--engine"])).is_err());
    }

    #[test]
    fn option_or_parses_with_default() {
        let p = parse(&strs(&["--k", "4"])).unwrap();
        assert_eq!(p.option_or("k", 3u8).unwrap(), 4);
        assert_eq!(p.option_or("alpha", 0.1f64).unwrap(), 0.1);
        assert!(p.option_or::<u8>("k", 0).is_ok());
        let bad = parse(&strs(&["--k", "x"])).unwrap();
        assert!(bad.option_or("k", 3u8).is_err());
    }
}
