//! Table IV — decomposition cost comparison across all 15 circuits:
//! ILP (Eq. 3 on the 0-1 solver, optimal), SDP, EC, Ours (adaptive,
//! no ColorGNN), and Ours w. GNN. "Ours" is evaluated with the paper's
//! leave-2-out protocol: each circuit is decomposed by a framework that
//! never saw it during training.

use mpld::run_pipeline;
use mpld_bench::{print_table, train_fold, Bench};
use mpld_ec::EcDecomposer;
use mpld_ilp::encode::BipDecomposer;
use mpld_sdp::SdpDecomposer;

fn main() {
    let bench = Bench::load();
    let n = bench.circuits.len();
    let mut rows = Vec::new();
    let mut totals = [0f64; 5];

    // Per-fold adaptive results (honest held-out evaluation).
    let mut ours = vec![None; n];
    let mut ours_gnn = vec![None; n];
    for (train_idx, test_idx) in bench.folds() {
        if train_idx.is_empty() {
            continue;
        }
        let mut fw = train_fold(&bench, &train_idx);
        for &ci in &test_idx {
            fw.use_colorgnn = false;
            ours[ci] = Some(fw.decompose_prepared(&bench.prepared[ci]).pipeline.cost);
            fw.use_colorgnn = true;
            ours_gnn[ci] = Some(fw.decompose_prepared(&bench.prepared[ci]).pipeline.cost);
        }
        eprintln!("fold tested {test_idx:?}");
    }

    for ci in 0..n {
        let prep = &bench.prepared[ci];
        let ilp = run_pipeline(prep, &BipDecomposer::new(), &bench.params).cost;
        let sdp = run_pipeline(prep, &SdpDecomposer::new(), &bench.params).cost;
        let ec = run_pipeline(prep, &EcDecomposer::new(), &bench.params).cost;
        let a = bench.params.alpha;
        let (o, og) = (ours[ci], ours_gnn[ci]);
        let vals = [
            ilp.value(a),
            sdp.value(a),
            ec.value(a),
            o.map(|c| c.value(a)).unwrap_or(f64::NAN),
            og.map(|c| c.value(a)).unwrap_or(f64::NAN),
        ];
        for (t, v) in totals.iter_mut().zip(vals) {
            if !v.is_nan() {
                *t += v;
            }
        }
        rows.push(vec![
            bench.circuits[ci].name.to_string(),
            format!("{:.1}", vals[0]),
            format!("{:.1}", vals[1]),
            format!("{:.1}", vals[2]),
            o.map(|c| format!("{:.1}", c.value(a)))
                .unwrap_or_else(|| "-".into()),
            og.map(|c| format!("{:.1}", c.value(a)))
                .unwrap_or_else(|| "-".into()),
        ]);
        eprintln!("{} measured", bench.circuits[ci].name);
    }
    rows.push(vec![
        "total".into(),
        format!("{:.1}", totals[0]),
        format!("{:.1}", totals[1]),
        format!("{:.1}", totals[2]),
        format!("{:.1}", totals[3]),
        format!("{:.1}", totals[4]),
    ]);
    let ratio = |i: usize| {
        if totals[0] > 0.0 {
            format!("{:.3}", totals[i] / totals[0])
        } else {
            "1.000".into()
        }
    };
    rows.push(vec![
        "ratio".into(),
        "1.000".into(),
        ratio(1),
        ratio(2),
        ratio(3),
        ratio(4),
    ]);

    println!("\nTable IV: decomposition cost (cn# + 0.1 st#)\n");
    print_table(
        &["circuit", "ILP", "SDP", "EC", "Ours", "Ours w. GNN"],
        &rows,
    );
    println!("\npaper shape: ILP optimal; EC/SDP slightly above; Ours and Ours w. GNN match ILP.");
}
